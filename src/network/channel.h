/**
 * @file
 * Point-to-point channel with latency, bandwidth, and a credit lane.
 *
 * A Channel carries flits downstream and flow-control credits
 * upstream.  `latency` models time of flight (pipelined — a new flit
 * may enter every `period` cycles regardless of latency).  `period`
 * expresses channel bandwidth as cycles per flit: the topology
 * comparison of paper Section 3.3 holds bisection bandwidth constant,
 * which gives the 10-dimensional hypercube half-bandwidth channels
 * (period 2) relative to the other topologies.
 *
 * Optionally a channel can run a link-layer reliability protocol
 * (enableReliability): every flit carries a CRC-32C and a per-channel
 * sequence number, the transmitter keeps a go-back-N replay buffer
 * with a sliding-window cumulative ack, the receiver nacks CRC
 * failures and sequence gaps and suppresses duplicates, and the
 * transmitter retransmits on nack or timeout with capped exponential
 * backoff.  A seeded error model injects corruption/erasure on each
 * wire attempt.  The flit accounting observed from outside
 * (flitsInFlight, flitsInFlightOnVc) is *logical*: a flit counts as
 * in flight from the first sendFlit until it is accepted in order by
 * receiveFlit, no matter how many wire attempts the protocol needs —
 * so the network-wide flit/credit conservation invariants hold
 * unchanged with and without retransmission.
 */

#ifndef FBFLY_NETWORK_CHANNEL_H
#define FBFLY_NETWORK_CHANNEL_H

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/ring_queue.h"
#include "common/rng.h"
#include "common/types.h"
#include "network/active_set.h"
#include "network/flit.h"

namespace fbfly
{

class TraceSink;

/**
 * Counters for the link-layer reliability protocol, per channel or
 * summed network-wide (Network::linkStats()).
 */
struct LinkStats
{
    /** Wire transmission attempts (first sends + retransmissions). */
    std::uint64_t attempts = 0;
    /** Wire attempts that were retransmissions of a buffered flit. */
    std::uint64_t retransmits = 0;
    /** Flits corrupted on the wire by the error model. */
    std::uint64_t corruptInjected = 0;
    /** Flits erased (lost) on the wire by the error model. */
    std::uint64_t eraseInjected = 0;
    /** Arrivals rejected by the receiver's CRC check. */
    std::uint64_t crcRejected = 0;
    /** Duplicate arrivals suppressed by the receiver. */
    std::uint64_t dupSuppressed = 0;
    /** Nacks pushed onto the upstream ack lane. */
    std::uint64_t nacksSent = 0;
    /** Cumulative acks pushed onto the upstream ack lane. */
    std::uint64_t acksSent = 0;
    /** Retransmission rounds triggered by timeout (not nack). */
    std::uint64_t timeouts = 0;

    LinkStats &operator+=(const LinkStats &o);
};

/**
 * Knobs for the link-layer retry protocol.  The defaults keep the
 * protocol timing-transparent at zero error rate for the channel
 * latencies used in the experiments: the window exceeds the largest
 * number of flits a full-bandwidth channel can have outstanding
 * before the first ack returns, and the timeout exceeds the ack
 * round trip (see docs/FAULTS.md).
 */
struct LinkReliabilityConfig
{
    bool enabled = false;
    /** Transmitter window: max unacked flits in the replay buffer. */
    int windowFlits = 16;
    /** Initial retransmission timeout in cycles since last progress. */
    Cycle retryTimeout = 32;
    /** Cap for the exponential backoff of the retry timeout. */
    Cycle maxTimeout = 1024;
};

/**
 * Per-wire-attempt error rates for one channel (drawn from the
 * fault-subsystem ErrorModel; see src/fault/error_model.h).
 *
 * Burst errors follow a Gilbert-Elliott two-state chain: in the good
 * state each attempt enters the bad state with probability
 * `burstStart`; in the bad state the base rates are multiplied by
 * `burstFactor` and each attempt leaves with probability `burstStop`.
 */
struct LinkErrorRates
{
    /** P(flit payload corrupted on the wire) per attempt. */
    double corrupt = 0.0;
    /** P(flit erased — never arrives) per attempt. */
    double erase = 0.0;
    double burstStart = 0.0;
    double burstStop = 1.0;
    double burstFactor = 1.0;

    bool any() const { return corrupt > 0.0 || erase > 0.0; }
};

/**
 * One unidirectional flit channel with an upstream credit lane.
 */
class Channel
{
  public:
    /**
     * @param latency cycles of flight for flits and credits (>= 1).
     * @param period  cycles per flit (>= 1); 1 = full bandwidth.
     */
    explicit Channel(Cycle latency = 1, Cycle period = 1);

    Channel(Channel &&) = default;
    Channel &operator=(Channel &&) = default;

    Cycle latency() const { return latency_; }
    Cycle period() const { return period_; }

    /**
     * Turn on the link-layer retry protocol with the given error
     * rates.  Must be called before any flit is sent.  @p rng seeds
     * the channel-private error draw stream (channel-private so
     * results are independent of cross-channel event order and thus
     * of the sweep engine's thread count).
     */
    void enableReliability(const LinkReliabilityConfig &cfg,
                           const LinkErrorRates &rates, Rng rng);

    /** True once enableReliability() has been called. */
    bool reliable() const { return rel_ != nullptr; }

    /** Pre-size the per-VC in-flight accounting for @p num_vcs VCs
     *  so the hot send path never grows it (one up-front allocation
     *  per channel instead of demand growth; the grow-on-demand
     *  fallback stays for standalone channels in tests). */
    void reserveVcs(int num_vcs)
    {
        if (num_vcs > 0 &&
            inFlightVc_.size() < static_cast<std::size_t>(num_vcs))
            inFlightVc_.resize(static_cast<std::size_t>(num_vcs), 0);
    }

    /** True if the channel is alive, bandwidth allows a flit to enter
     *  at cycle @p now, and (reliable mode) the replay window has
     *  room and no retransmission round is in progress. */
    bool canSendFlit(Cycle now) const;

    /**
     * Place a flit on the wire at cycle @p now.
     *
     * Misuse fails fast: sending on a dead channel, sending when
     * `!canSendFlit(now)` (bandwidth violation), or sending at a
     * cycle earlier than a previous send (which would corrupt FIFO
     * arrival order) all panic.
     */
    void sendFlit(const Flit &f, Cycle now);

    /**
     * Take the next flit that has arrived by cycle @p now, if any.
     * Flits arrive in FIFO order, `latency` cycles after being sent.
     * In reliable mode corrupted/duplicate/out-of-order arrivals are
     * consumed internally (nacked / suppressed) and only clean,
     * in-sequence flits are returned.
     */
    std::optional<Flit> receiveFlit(Cycle now);

    /**
     * Advance the transmitter side of the retry protocol at cycle
     * @p now: drain the ack lane (advance the replay window, honor
     * nacks), trigger timeout-based retransmission rounds, and put
     * one pending retransmission on the wire if bandwidth allows.
     * No-op on plain channels.  Must be called with non-decreasing
     * cycles, before the cycle's sendFlit calls (the routers tick
     * their output channels at the top of the receive phase).
     */
    void tick(Cycle now);

    /** Send one credit upstream (no bandwidth limit on credits). */
    void sendCredit(VcId vc, Cycle now);

    /** Take the next credit that has arrived by cycle @p now, if any. */
    std::optional<VcId> receiveCredit(Cycle now);

    /**
     * Flits logically in flight (for invariant checks): sent but not
     * yet accepted in order by the receiver.  In reliable mode this
     * counts each flit once regardless of retransmissions.
     */
    int flitsInFlight() const;

    /** In-flight flits currently travelling on VC @p vc (credit
     *  conservation checks). */
    int flitsInFlightOnVc(VcId vc) const;

    /** In-flight upstream credits for VC @p vc. */
    int creditsInFlightOnVc(VcId vc) const;

    /** Total wire attempts ever made (for utilization accounting). */
    std::uint64_t flitsCarried() const { return flitsCarried_; }

    /** Reliability counters (all zero on plain channels). */
    const LinkStats &linkStats() const;

    /** Unacked flits currently held in the replay buffer. */
    int replayOccupancy() const;

    /**
     * Fail the channel (fail-stop transmitter): it refuses new flits
     * (`canSendFlit` is false) and drops future credits and acks on
     * its return lane.  Flits and credits already in flight are
     * still delivered.  Reversible via revive() (churn/repair
     * studies); a plain FaultModel never revives.
     */
    void kill();

    /** Flits discarded by a revive() (they were logically in flight
     *  on the dead channel and can never be delivered). */
    struct ReviveLoss
    {
        std::uint64_t flits = 0;
        /** Packets lost (counted at their tail flit). */
        std::uint64_t packets = 0;
        /** Lost packets that belonged to the measurement sample. */
        std::uint64_t measuredPackets = 0;
    };

    /**
     * Repair a dead channel (must be dead).
     *
     * A plain channel simply starts accepting flits again: anything
     * still on the wire from before the failure keeps flying and is
     * delivered normally (nothing is lost — a dead plain channel
     * refuses new sends, so no flit was ever stranded).
     *
     * A reliable channel resets its go-back-N state cleanly: flits
     * still unacked in the replay buffer that the receiver never
     * accepted are *lost* (the outage outlived their retransmission
     * window) and returned in the ReviveLoss for drop accounting;
     * the wire and ack lanes are flushed, sequence numbers restart
     * at zero on both sides, and the burst/backoff state is cleared.
     * Cumulative reliability counters (LinkStats) are retained.
     *
     * The caller (Network) must restore upstream credit levels to
     * match downstream buffer occupancy afterwards, so the per-lane
     * conservation invariant holds from the revival cycle on.
     */
    ReviveLoss revive();

    /** True once kill() has been called. */
    bool dead() const { return dead_; }

    /** Credits dropped because the channel was dead. */
    std::uint64_t creditsDropped() const { return creditsDropped_; }

    /** Attach a trace sink (nullptr disables; see obs/trace.h).
     *  @p track is this channel's timeline row. */
    void setTrace(TraceSink *sink, std::int32_t track)
    {
        trace_ = sink;
        traceTrack_ = track;
    }

    /** @name Active-set scheduling (src/network/active_set.h) @{ */

    /**
     * Attach the kernel's scheduler (nullptr: no wakes — bare
     * channels in unit tests run without one).  @p up is the
     * component that transmits on this channel (it receives credits
     * and acks and runs the retry transmitter); @p down is the
     * component flits are delivered to.  The channel wakes them
     * exactly when an arrival or timer becomes actionable, so the
     * kernel can skip them otherwise.
     */
    void setScheduler(ActiveSet *sched, std::uint32_t up,
                      std::uint32_t down)
    {
        sched_ = sched;
        upComp_ = up;
        downComp_ = down;
    }

    /** A flit has arrived and is ready to receive at @p now. */
    bool hasFlitArrival(Cycle now) const
    {
        return !flits_.empty() && flits_.front().first <= now;
    }

    /** A credit has arrived and is ready to receive at @p now. */
    bool hasCreditArrival(Cycle now) const
    {
        return !credits_.empty() && credits_.front().first <= now;
    }

    /**
     * The retry transmitter has actionable work at @p now (a due
     * ack/nack, a retransmission round in progress, or an expired
     * timeout).  When false, tick(now) is a no-op and may be
     * skipped.
     */
    bool needsTick(Cycle now) const
    {
        if (rel_ == nullptr)
            return false;
        return (!rel_->acks.empty() &&
                rel_->acks.front().first <= now) ||
               rel_->resendPos != kNoResend ||
               (!rel_->replay.empty() && now >= rel_->deadline);
    }

    /** @} */

  private:
    /** One ack-lane message: cumulative ack or targeted nack. */
    struct Ack
    {
        /** Ack: receiver expects this seq next (all < seq are in).
         *  Nack: retransmit from this seq. */
        std::uint64_t seq;
        bool nack;
    };

    static constexpr std::size_t kNoResend = ~std::size_t{0};

    /** Transmitter/receiver state, allocated only in reliable mode. */
    struct Reliability
    {
        LinkReliabilityConfig cfg;
        LinkErrorRates rates;
        Rng rng;
        /** Gilbert-Elliott burst state (true = bad/bursty). */
        bool inBurst = false;

        /** @name Transmitter
         *  @{ */
        /** Unacked flits, seq baseSeq_ .. nextSeq_-1 in order. */
        RingQueue<Flit> replay;
        std::uint64_t nextSeq = 0;
        std::uint64_t baseSeq = 0;
        /** Index into replay of the next flit to retransmit in the
         *  current go-back-N round; kNoResend when idle. */
        std::size_t resendPos = kNoResend;
        /** Current (backed-off) timeout and its deadline. */
        Cycle timeout = 0;
        Cycle deadline = 0;
        /** @} */

        /** @name Receiver
         *  @{ */
        std::uint64_t expectedSeq = 0;
        /** Whether a nack for expectedSeq is already outstanding —
         *  suppresses nack storms while a gap's arrivals drain. */
        bool nackPending = false;
        /** @} */

        /** Upstream ack lane (arrival cycle, message). */
        RingQueue<std::pair<Cycle, Ack>> acks;

        LinkStats stats;
    };

    /** Put @p f on the wire at @p now, applying the error model. */
    void transmitAttempt(const Flit &f, Cycle now, bool is_retransmit);
    /** Queue an ack-lane message upstream (dropped if dead). */
    void pushAck(const Ack &a, Cycle now);
    /** Drain ack lane + run timeout/retransmit state machine. */
    void tickTransmitter(Cycle now);

    Cycle latency_;
    Cycle period_;
    Cycle nextFree_ = 0;
    bool dead_ = false;
    std::uint64_t flitsCarried_ = 0;
    std::uint64_t creditsDropped_ = 0;
    /** Monotonicity watermarks: the channel is a FIFO wire, so every
     *  endpoint must present non-decreasing cycles. */
    Cycle lastFlitSend_ = 0;
    Cycle lastFlitRecv_ = 0;
    Cycle lastCreditSend_ = 0;
    Cycle lastCreditRecv_ = 0;
    /** Logical in-flight accounting (see flitsInFlight()). */
    int logicalInFlight_ = 0;
    std::vector<int> inFlightVc_;
    RingQueue<std::pair<Cycle, Flit>> flits_;
    RingQueue<std::pair<Cycle, VcId>> credits_;
    std::unique_ptr<Reliability> rel_;

    /** Observability (nullptr: tracing off — one dead branch per
     *  record site). */
    TraceSink *trace_ = nullptr;
    std::int32_t traceTrack_ = -1;

    /** Active-set wake targets (nullptr: standalone channel). */
    ActiveSet *sched_ = nullptr;
    std::uint32_t upComp_ = 0;
    std::uint32_t downComp_ = 0;
};

} // namespace fbfly

#endif // FBFLY_NETWORK_CHANNEL_H
