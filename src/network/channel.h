/**
 * @file
 * Point-to-point channel with latency, bandwidth, and a credit lane.
 *
 * A Channel carries flits downstream and flow-control credits
 * upstream.  `latency` models time of flight (pipelined — a new flit
 * may enter every `period` cycles regardless of latency).  `period`
 * expresses channel bandwidth as cycles per flit: the topology
 * comparison of paper Section 3.3 holds bisection bandwidth constant,
 * which gives the 10-dimensional hypercube half-bandwidth channels
 * (period 2) relative to the other topologies.
 */

#ifndef FBFLY_NETWORK_CHANNEL_H
#define FBFLY_NETWORK_CHANNEL_H

#include <deque>
#include <optional>
#include <utility>

#include "common/types.h"
#include "network/flit.h"

namespace fbfly
{

/**
 * One unidirectional flit channel with an upstream credit lane.
 */
class Channel
{
  public:
    /**
     * @param latency cycles of flight for flits and credits (>= 1).
     * @param period  cycles per flit (>= 1); 1 = full bandwidth.
     */
    explicit Channel(Cycle latency = 1, Cycle period = 1);

    Cycle latency() const { return latency_; }
    Cycle period() const { return period_; }

    /** True if the channel is alive and bandwidth allows a flit to
     *  enter at cycle @p now. */
    bool canSendFlit(Cycle now) const;

    /**
     * Place a flit on the wire at cycle @p now.
     *
     * Misuse fails fast: sending on a dead channel, sending when
     * `!canSendFlit(now)` (bandwidth violation), or sending at a
     * cycle earlier than a previous send (which would corrupt FIFO
     * arrival order) all panic.
     */
    void sendFlit(const Flit &f, Cycle now);

    /**
     * Take the next flit that has arrived by cycle @p now, if any.
     * Flits arrive in FIFO order, `latency` cycles after being sent.
     */
    std::optional<Flit> receiveFlit(Cycle now);

    /** Send one credit upstream (no bandwidth limit on credits). */
    void sendCredit(VcId vc, Cycle now);

    /** Take the next credit that has arrived by cycle @p now, if any. */
    std::optional<VcId> receiveCredit(Cycle now);

    /** Flits currently in flight (for invariant checks). */
    int flitsInFlight() const { return static_cast<int>(flits_.size()); }

    /** In-flight flits currently travelling on VC @p vc (credit
     *  conservation checks). */
    int flitsInFlightOnVc(VcId vc) const;

    /** In-flight upstream credits for VC @p vc. */
    int creditsInFlightOnVc(VcId vc) const;

    /** Total flits ever sent (for utilization accounting). */
    std::uint64_t flitsCarried() const { return flitsCarried_; }

    /**
     * Fail the channel (fail-stop transmitter): it refuses new flits
     * (`canSendFlit` is false forever) and drops future credits on
     * its return lane.  Flits and credits already in flight are still
     * delivered.  Irreversible.
     */
    void kill();

    /** True once kill() has been called. */
    bool dead() const { return dead_; }

    /** Credits dropped because the channel was dead. */
    std::uint64_t creditsDropped() const { return creditsDropped_; }

  private:
    Cycle latency_;
    Cycle period_;
    Cycle nextFree_ = 0;
    bool dead_ = false;
    std::uint64_t flitsCarried_ = 0;
    std::uint64_t creditsDropped_ = 0;
    /** Monotonicity watermarks: the channel is a FIFO wire, so every
     *  endpoint must present non-decreasing cycles. */
    Cycle lastFlitSend_ = 0;
    Cycle lastFlitRecv_ = 0;
    Cycle lastCreditSend_ = 0;
    Cycle lastCreditRecv_ = 0;
    std::deque<std::pair<Cycle, Flit>> flits_;
    std::deque<std::pair<Cycle, VcId>> credits_;
};

} // namespace fbfly

#endif // FBFLY_NETWORK_CHANNEL_H
