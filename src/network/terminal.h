/**
 * @file
 * Terminal — a processing node's network interface.
 *
 * Each terminal owns an unbounded source queue of pending packets,
 * injects flits into its router's terminal input port under credit
 * flow control, and receives (ejects) flits addressed to it,
 * reporting per-packet statistics to the Network.
 *
 * To keep memory O(1) per queued packet even far beyond saturation,
 * the queue stores only (creation time, destination, measured);
 * destinations may be left unresolved (kInvalid) and drawn from the
 * network's traffic pattern at injection time.
 */

#ifndef FBFLY_NETWORK_TERMINAL_H
#define FBFLY_NETWORK_TERMINAL_H

#include <deque>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "network/channel.h"
#include "network/flit.h"

namespace fbfly
{

class Network;
class TraceSink;
class TrafficPattern;

/**
 * Injection/ejection endpoint for one node.
 */
class Terminal
{
  public:
    Terminal(NodeId id, int num_vcs, int vc_depth, Rng rng,
             Network *parent);

    NodeId id() const { return id_; }

    /** @name Wiring (called by Network) @{ */
    void connectToRouter(Channel *ch) { toRouter_ = ch; }
    void connectFromRouter(Channel *ch) { fromRouter_ = ch; }
    /** @} */

    /**
     * Queue one packet for injection.
     *
     * @param create_time creation cycle (for latency accounting).
     * @param dst destination node, or kInvalid to draw from the
     *        network's traffic pattern at injection time.
     * @param measured whether the packet belongs to the measurement
     *        sample.
     */
    void enqueuePacket(Cycle create_time, NodeId dst, bool measured);

    /** @name Per-cycle phases (called by Network) @{ */

    /** Drain ejected flits (recording stats) and returned credits. */
    void receive(Cycle now);

    /** Inject up to one flit if credits and bandwidth allow.
     *  Equivalent to planInject(); assignPlannedIds();
     *  executeInject() — the sequential path and the sharded phases
     *  share one decision procedure. */
    void inject(Cycle now);

    /** @} */

    /** @name Sharded-step phases (DESIGN.md "Sharded step engine") @{
     *
     * The sharded engine splits inject() so the only global mutation
     * — drawing packet/flit ids from the Network's counters — runs in
     * a short serial pass between the parallel phases:
     *
     *  - planInject() (parallel, receive phase): decide from
     *    terminal-local state whether a packet starts and whether a
     *    flit departs this cycle, and apply the terminal-local start
     *    mutations (the decision inputs — own queue, own credits, own
     *    injection channel's busy/dead state — cannot change between
     *    the receive and advance phases, so the decision equals the
     *    one the sequential advance phase would make);
     *  - assignPlannedIds() (serial, ascending terminal id over the
     *    cycle's active terminals): draw the packet id then the flit
     *    id — the exact order the sequential loop draws them;
     *  - executeInject() (parallel, advance phase): build and send
     *    the planned flit.
     */

    /**
     * Deferred-stat buffer for the sharded step: while attached,
     * receive()/executeInject() accumulate integer counters as deltas
     * and queue oracle-visible flits here instead of touching the
     * shared NetworkStats/DeliveryOracle; the serial commit applies
     * them in ascending terminal order (Welford/histogram adds and
     * oracle callbacks are order-sensitive).
     */
    struct ShardSink
    {
        std::uint64_t flitsInjected = 0;
        std::uint64_t flitsEjected = 0;
        std::uint64_t hopsEjected = 0;
        std::uint64_t packetsEjected = 0;
        std::int64_t pendingPacketsDelta = 0;
        int midPacketDelta = 0;
        /** Measured tail flits ejected this cycle, arrival order
         *  (commit: oracle->onEject + latency/hop sample adds). */
        std::vector<Flit> measuredEjects;
        /** Measured head flits injected this cycle (commit:
         *  oracle->onInject). */
        std::vector<Flit> measuredInjects;

        void reset()
        {
            flitsInjected = 0;
            flitsEjected = 0;
            hopsEjected = 0;
            packetsEjected = 0;
            pendingPacketsDelta = 0;
            midPacketDelta = 0;
            measuredEjects.clear();
            measuredInjects.clear();
        }
    };

    /** Attach (or detach, nullptr) the shard's deferred-stat sink. */
    void setShardSink(ShardSink *sink) { sink_ = sink; }

    /** Parallel phase A: decide this cycle's injection and apply the
     *  terminal-local part (queue pop, VC selection, dest draw). */
    void planInject(Cycle now);

    /** Serial: draw the planned packet/flit ids from the Network. */
    void assignPlannedIds();

    /** Parallel phase B: send the planned flit, if any. */
    void executeInject(Cycle now);

    /** @} */

    /** Packets waiting (not yet started injecting). */
    std::int64_t sourceQueueLength() const
    {
        return static_cast<std::int64_t>(queue_.size());
    }

    /** True while a packet is partially injected. */
    bool midPacket() const { return remainingFlits_ > 0; }

    /** Credits held toward the router-side input VC @p vc (credit
     *  conservation checks). */
    int credits(VcId vc) const
    {
        return credits_[static_cast<std::size_t>(vc)];
    }

    /** Restore per-VC credit levels after an injection-channel
     *  repair (called by Network, which computes them from the
     *  router-side buffer occupancy; see Router::reviveOutput). */
    void setCredits(const std::vector<int> &credits)
    {
        credits_ = credits;
    }

    Rng &rng() { return rng_; }

    /**
     * Would the pre-rewrite full-tick loop have done anything with
     * this terminal at @p now?  True when packets are queued or
     * mid-injection, an ejection flit is due, or the injection
     * channel has a credit arrival or link-layer work pending.  The
     * shadow-kernel verifier diffs this predicate against the
     * ActiveSet (see Router::hasActionableWork).
     */
    bool hasActionableWork(Cycle now) const
    {
        if (!queue_.empty() || remainingFlits_ > 0)
            return true;
        if (fromRouter_ != nullptr && fromRouter_->hasFlitArrival(now))
            return true;
        if (toRouter_ != nullptr &&
            (toRouter_->hasCreditArrival(now) ||
             toRouter_->needsTick(now)))
            return true;
        return false;
    }

    /** Attach a trace sink (nullptr disables; see obs/trace.h).
     *  @p track is this terminal's timeline row. */
    void setTrace(TraceSink *sink, std::int32_t track)
    {
        trace_ = sink;
        traceTrack_ = track;
    }

    /** Attach the kernel's scheduler; @p comp is this terminal's
     *  component id in it (nullptr: standalone terminal in tests).
     *  Enqueuing a packet then wakes the terminal so the kernel's
     *  inject phase sees it next cycle. */
    void setScheduler(ActiveSet *sched, std::uint32_t comp)
    {
        sched_ = sched;
        comp_ = comp;
    }

  private:
    struct Pending
    {
        Cycle create;
        NodeId dst;
        bool measured;
    };

    NodeId id_;
    int numVcs_;
    Rng rng_;
    Network *parent_;

    Channel *toRouter_ = nullptr;
    Channel *fromRouter_ = nullptr;

    std::deque<Pending> queue_;
    std::vector<int> credits_; // per router-side input VC
    int lastVc_ = 0;

    /** In-progress packet state (wormhole: one VC per packet). */
    int remainingFlits_ = 0;
    int flitIndex_ = 0;
    VcId currentVc_ = kInvalid;
    Pending current_{};
    PacketId currentPacket_ = 0;

    /** This cycle's injection plan (planInject → executeInject). */
    bool planStart_ = false;
    bool planSend_ = false;
    FlitId plannedFlit_ = 0;

    /** Deferred-stat sink (nullptr: write shared stats directly). */
    ShardSink *sink_ = nullptr;

    /** Observability (nullptr: tracing off — one dead branch per
     *  record site). */
    TraceSink *trace_ = nullptr;
    std::int32_t traceTrack_ = -1;

    /** Active-set wake target (nullptr: standalone terminal). */
    ActiveSet *sched_ = nullptr;
    std::uint32_t comp_ = 0;
};

} // namespace fbfly

#endif // FBFLY_NETWORK_TERMINAL_H
