#include "network/network.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string_view>

#include "common/log.h"
#include "fault/churn_model.h"
#include "fault/error_model.h"
#include "fault/fault_model.h"
#include "obs/trace.h"
#include "routing/routing.h"
#include "sim/delivery_oracle.h"
#include "topology/topology.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{

std::string
ValidationReport::summary() const
{
    std::string out;
    for (const auto &issue : issues) {
        if (!out.empty())
            out += '\n';
        out += issue;
    }
    return out;
}

ValidationReport
Network::validate(const Topology &topo, const RoutingAlgorithm &algo,
                  const NetworkConfig &cfg)
{
    ValidationReport rep;
    const auto add = [&rep](auto &&...args) {
        rep.issues.push_back(detail::format(args...));
    };

    // --- Simulator knobs -------------------------------------------
    if (cfg.numVcs != algo.numVcs()) {
        add("routing algorithm '", algo.name(), "' needs ",
            algo.numVcs(), " VCs but the network has ", cfg.numVcs);
    }
    if (cfg.numVcs < 1)
        add("numVcs must be >= 1 (got ", cfg.numVcs, ")");
    if (cfg.vcDepth < 1)
        add("vcDepth must be >= 1 (got ", cfg.vcDepth, ")");
    if (cfg.packetSize < 1)
        add("packetSize must be >= 1 (got ", cfg.packetSize, ")");
    if (cfg.channelLatency < 1)
        add("channelLatency must be >= 1");
    if (cfg.channelPeriod < 1)
        add("channelPeriod must be >= 1");
    if (cfg.terminalLatency < 1)
        add("terminalLatency must be >= 1");
    if (cfg.shards < 1)
        add("shards must be >= 1 (got ", cfg.shards, ")");

    // --- Topology wiring -------------------------------------------
    const auto arcs = topo.arcs();
    if (!cfg.arcLatencies.empty() &&
        cfg.arcLatencies.size() != arcs.size()) {
        add("arcLatencies has ", cfg.arcLatencies.size(),
            " entries but the topology has ", arcs.size(), " arcs");
    }
    const int num_routers = topo.numRouters();
    std::set<std::pair<RouterId, PortId>> outUsed, inUsed;
    for (std::size_t i = 0; i < arcs.size(); ++i) {
        const auto &a = arcs[i];
        if (a.src < 0 || a.src >= num_routers || a.dst < 0 ||
            a.dst >= num_routers) {
            add("arc ", i, " references router out of range");
            continue;
        }
        if (a.srcPort < 0 || a.srcPort >= topo.numPorts(a.src))
            add("arc ", i, " source port ", a.srcPort,
                " out of range on router ", a.src);
        else if (!outUsed.insert({a.src, a.srcPort}).second)
            add("router ", a.src, " output port ", a.srcPort,
                " wired twice");
        if (a.dstPort < 0 || a.dstPort >= topo.numPorts(a.dst))
            add("arc ", i, " dest port ", a.dstPort,
                " out of range on router ", a.dst);
        else if (!inUsed.insert({a.dst, a.dstPort}).second)
            add("router ", a.dst, " input port ", a.dstPort,
                " wired twice");
    }
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        const RouterId ir = topo.injectionRouter(n);
        const RouterId er = topo.ejectionRouter(n);
        if (ir < 0 || ir >= num_routers || er < 0 ||
            er >= num_routers) {
            add("node ", n, " attaches to router out of range");
            continue;
        }
        const PortId ip = topo.injectionPort(n);
        const PortId ep = topo.ejectionPort(n);
        if (ip < 0 || ip >= topo.numPorts(ir))
            add("node ", n, " injection port out of range");
        else if (!inUsed.insert({ir, ip}).second)
            add("node ", n, " injection port ", ip, " on router ",
                ir, " collides with other wiring");
        if (ep < 0 || ep >= topo.numPorts(er))
            add("node ", n, " ejection port out of range");
        else if (!outUsed.insert({er, ep}).second)
            add("node ", n, " ejection port ", ep, " on router ", er,
                " collides with other wiring");
    }

    // --- Transient errors + link-layer retry -----------------------
    if (cfg.errors != nullptr) {
        const ErrorModel &em = *cfg.errors;
        if (&em.topology() != &topo || em.numArcs() != arcs.size()) {
            add("error model was built over a different topology");
        } else {
            const std::string bad = em.validateRates();
            if (!bad.empty())
                add("error model rates invalid:\n", bad);
        }
    }
    if (cfg.linkRetry.enabled ||
        (cfg.errors != nullptr && cfg.errors->anyErrors())) {
        if (cfg.linkRetry.windowFlits < 1)
            add("linkRetry.windowFlits must be >= 1 (got ",
                cfg.linkRetry.windowFlits, ")");
        if (cfg.linkRetry.retryTimeout < 1)
            add("linkRetry.retryTimeout must be >= 1");
        if (cfg.linkRetry.maxTimeout < cfg.linkRetry.retryTimeout)
            add("linkRetry.maxTimeout must be >= retryTimeout");
    }

    // --- Churn (dynamic service) model -----------------------------
    if (cfg.churn != nullptr) {
        const ChurnModel &cm = *cfg.churn;
        if (&cm.topology() != &topo || cm.numArcs() != arcs.size()) {
            add("churn model was built over a different topology");
        } else {
            const std::string bad = cm.validateConfig();
            if (!bad.empty())
                add("churn model config invalid: ", bad);
        }
    }

    // --- Fault set -------------------------------------------------
    if (cfg.faults != nullptr) {
        const FaultModel &fm = *cfg.faults;
        if (&fm.topology() != &topo ||
            fm.numArcs() != arcs.size()) {
            add("fault model was built over a different topology");
        } else if (!fm.connected()) {
            add("fault set disconnects a terminal: some ",
                "terminal-hosting router is failed or unreachable ",
                "once all faults are active");
        }
    }
    return rep;
}

Network::Network(const Topology &topo, RoutingAlgorithm &algo,
                 const TrafficPattern *pattern,
                 const NetworkConfig &cfg)
    : topo_(topo), algo_(algo), pattern_(pattern), cfg_(cfg)
{
    FBFLY_ASSERT(algo.numVcs() == cfg.numVcs,
                 "routing algorithm '", algo.name(), "' needs ",
                 algo.numVcs(), " VCs but the network has ",
                 cfg.numVcs);

    Rng master(cfg.seed);
    Rng routerRngs = master.split(0x526f757465ULL);   // "Route"
    Rng terminalRngs = master.split(0x5465726dccULL); // "Term"

    // Single-flit packets use the bypass (speedup) switch path;
    // multi-flit wormhole packets need strict per-VC FIFO order.
    const bool bypass = cfg.packetSize == 1;

    const int num_routers = topo.numRouters();
    routers_.reserve(num_routers);
    for (RouterId r = 0; r < num_routers; ++r) {
        routers_.emplace_back(r, topo.numPorts(r), cfg.numVcs,
                              cfg.vcDepth, routerRngs.split(r),
                              bypass);
        if (cfg.trace != nullptr) {
            const std::int32_t track =
                cfg.trace->addTrack("router " + std::to_string(r),
                                    TrackKind::kRouter);
            routers_.back().setTrace(cfg.trace, track);
            routerTracks_.push_back(track);
        }
    }

    // Inter-router channels.  The link-layer retry protocol runs on
    // these (and only these — terminal channels are short local
    // wires) when an error model injects transient errors or when
    // the protocol is explicitly enabled.
    arcs_ = topo.arcs();
    FBFLY_ASSERT(cfg.arcLatencies.empty() ||
                 cfg.arcLatencies.size() == arcs_.size(),
                 "arcLatencies must match the topology's arc list");
    const bool reliable_links =
        cfg.linkRetry.enabled ||
        (cfg.errors != nullptr && cfg.errors->anyErrors());
    if (cfg.errors != nullptr) {
        FBFLY_ASSERT(&cfg.errors->topology() == &topo &&
                     cfg.errors->numArcs() == arcs_.size(),
                     "error model topology mismatch (",
                     cfg.errors->numArcs(), " arcs vs ",
                     arcs_.size(), ")");
        const std::string bad = cfg.errors->validateRates();
        FBFLY_ASSERT(bad.empty(), "error model rates invalid:\n",
                     bad);
    }
    // One contiguous allocation for every channel (inter-router arcs
    // plus one injection + one ejection lane per node).  Reserving
    // the exact count up front keeps the Channel* wiring below stable
    // and replaces the former deque's per-block overhead — part of
    // the memory-lean contract for 100k-terminal networks.
    const std::size_t total_channels =
        arcs_.size() +
        2 * static_cast<std::size_t>(topo.numNodes());
    channels_.reserve(total_channels);
    Rng linkRngs = master.split(0x4c696e6b52656cULL); // "LinkRel"
    for (std::size_t i = 0; i < arcs_.size(); ++i) {
        const auto &arc = arcs_[i];
        const Cycle latency = cfg.arcLatencies.empty()
            ? cfg.channelLatency : cfg.arcLatencies[i];
        channels_.emplace_back(latency, cfg.channelPeriod);
        Channel *ch = &channels_.back();
        ch->reserveVcs(cfg.numVcs);
        if (reliable_links) {
            LinkReliabilityConfig rc = cfg.linkRetry;
            rc.enabled = true;
            // Auto-scale per channel so the protocol stays
            // timing-transparent on clean wires at any latency: the
            // window must exceed the flits outstanding before the
            // first ack returns, and the timeout must exceed the ack
            // round trip (docs/FAULTS.md).
            rc.windowFlits = std::max(
                rc.windowFlits, static_cast<int>(latency) + 4);
            rc.retryTimeout =
                std::max(rc.retryTimeout, 2 * latency + 8);
            rc.maxTimeout = std::max(rc.maxTimeout, rc.retryTimeout);
            const LinkErrorRates rates = cfg.errors != nullptr
                ? cfg.errors->arcRates(i) : LinkErrorRates{};
            // Error draws come from the error model's own seed so
            // the same traffic can be replayed under different error
            // draws; with no error model the stream is never
            // consumed.
            Rng err_rng = cfg.errors != nullptr
                ? cfg.errors->arcRng(i) : linkRngs.split(i);
            ch->enableReliability(rc, rates, err_rng);
        }
        if (cfg.trace != nullptr) {
            const std::int32_t track = cfg.trace->addTrack(
                "chan " + std::to_string(i) + ": " +
                    std::to_string(arc.src) + "->" +
                    std::to_string(arc.dst),
                TrackKind::kChannel);
            ch->setTrace(cfg.trace, track);
            arcTracks_.push_back(track);
        }
        routers_[arc.src].connectOutput(arc.srcPort, ch, cfg.vcDepth);
        routers_[arc.dst].connectInput(arc.dstPort, ch);
    }
    numArcs_ = arcs_.size();

    // Terminals and their channels.
    const std::int64_t num_nodes = topo.numNodes();
    terminals_.reserve(num_nodes);
    injChannels_.reserve(num_nodes);
    ejChannels_.reserve(num_nodes);
    for (NodeId n = 0; n < num_nodes; ++n) {
        terminals_.emplace_back(n, cfg.numVcs, cfg.vcDepth,
                                terminalRngs.split(n), this);
        Terminal &term = terminals_.back();
        if (cfg.trace != nullptr) {
            term.setTrace(
                cfg.trace,
                cfg.trace->addTrack("node " + std::to_string(n),
                                    TrackKind::kTerminal));
        }

        channels_.emplace_back(cfg.terminalLatency, Cycle{1});
        Channel *inj = &channels_.back();
        inj->reserveVcs(cfg.numVcs);
        term.connectToRouter(inj);
        routers_[topo.injectionRouter(n)]
            .connectInput(topo.injectionPort(n), inj);
        injChannels_.push_back(inj);

        channels_.emplace_back(cfg.terminalLatency, Cycle{1});
        Channel *ej = &channels_.back();
        ej->reserveVcs(cfg.numVcs);
        routers_[topo.ejectionRouter(n)]
            .connectOutput(topo.ejectionPort(n), ej,
                           Router::kInfiniteCredits);
        term.connectFromRouter(ej);
        ejChannels_.push_back(ej);
    }
    FBFLY_ASSERT(channels_.size() == total_channels,
                 "channel reserve mismatch: ", channels_.size(),
                 " built vs ", total_channels, " reserved");

    // Active-set scheduler wiring: routers are components [0, R),
    // terminals [R, R + N).  Each channel wakes its endpoints when
    // an arrival or retry timer becomes actionable; init() wakes
    // everything for cycle 0 so initial state (pre-enqueued packets,
    // cycle-0 faults) is observed.
    active_.init(static_cast<std::size_t>(num_routers) +
                 static_cast<std::size_t>(num_nodes));
    for (std::size_t i = 0; i < numArcs_; ++i) {
        channels_[i].setScheduler(
            &active_, static_cast<std::uint32_t>(arcs_[i].src),
            static_cast<std::uint32_t>(arcs_[i].dst));
    }
    for (NodeId n = 0; n < num_nodes; ++n) {
        const auto tcomp =
            static_cast<std::uint32_t>(num_routers + n);
        terminals_[n].setScheduler(&active_, tcomp);
        injChannels_[n]->setScheduler(
            &active_, tcomp,
            static_cast<std::uint32_t>(topo.injectionRouter(n)));
        ejChannels_[n]->setScheduler(
            &active_,
            static_cast<std::uint32_t>(topo.ejectionRouter(n)),
            tcomp);
    }

    // Schedule fault activations.
    if (cfg.faults != nullptr) {
        const FaultModel &fm = *cfg.faults;
        FBFLY_ASSERT(&fm.topology() == &topo_ &&
                     fm.numArcs() == numArcs_,
                     "fault model topology mismatch (",
                     fm.numArcs(), " arcs vs ", numArcs_, ")");
        for (std::size_t i = 0; i < numArcs_; ++i) {
            const Cycle at = fm.arcFailCycle(i);
            if (at != FaultModel::kNever) {
                faultSchedule_.push_back(
                    {at, static_cast<std::int64_t>(i), kInvalid});
            }
        }
        for (RouterId r = 0; r < num_routers; ++r) {
            const Cycle at = fm.routerFailCycle(r);
            if (at != FaultModel::kNever)
                faultSchedule_.push_back({at, kInvalid, r});
        }
        std::sort(faultSchedule_.begin(), faultSchedule_.end(),
                  [](const FaultEvent &a, const FaultEvent &b) {
                      return a.at < b.at;
                  });
    }

    // Dynamic-service (churn) schedule.
    if (cfg.churn != nullptr) {
        const ChurnModel &cm = *cfg.churn;
        FBFLY_ASSERT(&cm.topology() == &topo_ &&
                     cm.numArcs() == numArcs_,
                     "churn model topology mismatch (", cm.numArcs(),
                     " arcs vs ", numArcs_, ")");
        const std::string bad = cm.validateConfig();
        FBFLY_ASSERT(bad.empty(), "churn model config invalid: ",
                     bad);
        arcDownCauses_.assign(numArcs_, 0);
    }
    if (cfg.faults != nullptr || cfg.churn != nullptr) {
        arcPermDead_.assign(numArcs_, 0);
        routerPermDead_.assign(
            static_cast<std::size_t>(num_routers), 0);
    }
    if (cfg.faults != nullptr)
        applyFaults(0);
    if (cfg.churn != nullptr)
        applyChurn(0);

    // Shadow-kernel wake-contract verifier: the config flag, or the
    // FBFLY_VERIFY_WAKES environment variable (any value but "0")
    // to force it on process-wide — e.g. across a whole CI test run.
    verifyWakes_ = cfg.verifyWakeContract;
    if (const char *env = std::getenv("FBFLY_VERIFY_WAKES");
        env != nullptr && std::string_view(env) != "0")
        verifyWakes_ = true;

    // Sharded step engine (DESIGN.md).  Reliable channels carry
    // go-back-N transmitter/receiver state that both endpoints touch
    // in both phases, so those configurations fall back to the
    // sequential loop — which is what they produced before anyway
    // (bit-identical by construction).
    int shard_count = std::max(1, cfg.shards);
    shard_count = std::min(shard_count, std::max(1, num_routers));
    if (reliable_links)
        shard_count = 1;
    shardCount_ = shard_count;
    if (shardCount_ > 1) {
        shards_.resize(static_cast<std::size_t>(shardCount_));
        const auto R = static_cast<std::uint64_t>(num_routers);
        const auto N = static_cast<std::uint64_t>(num_nodes);
        for (int s = 0; s < shardCount_; ++s) {
            ShardContext &sc = shards_[static_cast<std::size_t>(s)];
            sc.routerLo =
                static_cast<std::uint32_t>(R * s / shardCount_);
            sc.routerHi =
                static_cast<std::uint32_t>(R * (s + 1) / shardCount_);
            sc.termLo = static_cast<std::uint32_t>(
                R + N * s / shardCount_);
            sc.termHi = static_cast<std::uint32_t>(
                R + N * (s + 1) / shardCount_);
            // Terminals report stats through their shard's deferred
            // sink from now on (shards_ never reallocates again).
            for (std::uint32_t c = sc.termLo; c < sc.termHi; ++c)
                terminals_[c - R].setShardSink(&sc.term);
        }
        pool_ = std::make_unique<PhasePool>(shardCount_ - 1);
    }
}

void
Network::applyFaults(Cycle now)
{
    while (nextFault_ < faultSchedule_.size() &&
           faultSchedule_[nextFault_].at <= now) {
        const FaultEvent &ev = faultSchedule_[nextFault_++];
        if (ev.arc != kInvalid) {
            const auto idx = static_cast<std::size_t>(ev.arc);
            const auto &arc = arcs_[idx];
            if (!arcPermDead_.empty())
                arcPermDead_[idx] = 1; // churn never revives this
            channels_[idx].kill();
            routers_[arc.src].killOutput(arc.srcPort);
        } else {
            // Router failure: incident arcs are scheduled separately
            // (FaultModel::arcFailCycle folds router failures in);
            // here we sever the router's terminals.
            if (!routerPermDead_.empty())
                routerPermDead_[static_cast<std::size_t>(
                    ev.router)] = 1;
            for (NodeId n = 0; n < topo_.numNodes(); ++n) {
                if (topo_.injectionRouter(n) == ev.router)
                    injChannels_[n]->kill();
                if (topo_.ejectionRouter(n) == ev.router) {
                    ejChannels_[n]->kill();
                    routers_[ev.router].killOutput(
                        topo_.ejectionPort(n));
                }
            }
        }
    }
}

void
Network::churnKillArc(std::size_t i)
{
    if (++arcDownCauses_[i] != 1)
        return; // already down via another active episode
    if (arcPermDead_[i] != 0)
        return; // permanently failed; churn leaves it alone
    Channel &ch = channels_[i];
    if (ch.dead())
        return;
    ch.kill();
    routers_[arcs_[i].src].killOutput(arcs_[i].srcPort);
}

void
Network::churnReviveArc(std::size_t i)
{
    FBFLY_ASSERT(arcDownCauses_[i] > 0,
                 "unbalanced churn repair on arc ", i);
    if (--arcDownCauses_[i] != 0)
        return; // still held down by another active episode
    if (arcPermDead_[i] != 0)
        return; // permanently failed; never revived
    Channel &ch = channels_[i];
    if (!ch.dead())
        return;
    const Channel::ReviveLoss loss = ch.revive();
    stats_.churnFlitsLost += loss.flits;
    stats_.churnPacketsLost += loss.packets;
    stats_.churnMeasuredLost += loss.measuredPackets;
    // Churn losses fold straight into the aggregate drop counters
    // (drop aggregation is incremental now; there is no end-of-cycle
    // full sync to pick these up).
    stats_.flitsDropped += loss.flits;
    stats_.packetsUnreachable += loss.packets;
    stats_.measuredDropped += loss.measuredPackets;

    // Recompute the upstream credit levels from ground truth so the
    // per-lane conservation invariant (credits + occupancy +
    // in-flight flits + in-flight credits == vcDepth) holds from
    // this cycle on.  A plain channel kept its wire contents across
    // the outage; a reliable one just zeroed them.
    const auto &arc = arcs_[i];
    const Router &down = routers_[arc.dst];
    std::vector<int> cr(static_cast<std::size_t>(cfg_.numVcs));
    for (VcId v = 0; v < cfg_.numVcs; ++v) {
        const int occ = static_cast<int>(
            down.inputUnit(arc.dstPort, v).buf.size());
        const int level = cfg_.vcDepth - occ -
                          ch.flitsInFlightOnVc(v) -
                          ch.creditsInFlightOnVc(v);
        FBFLY_ASSERT(level >= 0 && level <= cfg_.vcDepth,
                     "revive credit level out of range on arc ", i,
                     " vc ", v, ": ", level);
        cr[static_cast<std::size_t>(v)] = level;
    }
    routers_[arc.src].reviveOutput(arc.srcPort, cr);
}

void
Network::applyServiceEvent(const ServiceEvent &ev, Cycle now)
{
    const ChurnModel &cm = *cfg_.churn;
    switch (ev.kind) {
    case ServiceEvent::Kind::kLinkDown: {
        churnKillArc(ev.link);
        const std::size_t rev = cm.reverseArc(ev.link);
        if (rev != ChurnModel::kNoPair)
            churnKillArc(rev);
        ++stats_.churnDownEvents;
        if (cfg_.trace != nullptr) {
            cfg_.trace->record(TraceEventType::kChurn, now,
                               arcTracks_[ev.link], Flit{},
                               static_cast<std::int32_t>(ev.link),
                               static_cast<std::int32_t>(ev.episode));
        }
        break;
    }
    case ServiceEvent::Kind::kLinkUp: {
        churnReviveArc(ev.link);
        const std::size_t rev = cm.reverseArc(ev.link);
        if (rev != ChurnModel::kNoPair)
            churnReviveArc(rev);
        ++stats_.churnRepairEvents;
        if (cfg_.trace != nullptr) {
            cfg_.trace->record(TraceEventType::kRepair, now,
                               arcTracks_[ev.link], Flit{},
                               static_cast<std::int32_t>(ev.link),
                               static_cast<std::int32_t>(ev.episode));
        }
        break;
    }
    case ServiceEvent::Kind::kRouterDown: {
        const auto r = static_cast<std::size_t>(ev.router);
        if (routerPermDead_[r] != 0)
            break; // fail-stopped for good; nothing left to churn
        for (std::size_t i = 0; i < numArcs_; ++i) {
            if (arcs_[i].src == ev.router ||
                arcs_[i].dst == ev.router)
                churnKillArc(i);
        }
        for (NodeId n = 0; n < topo_.numNodes(); ++n) {
            if (topo_.injectionRouter(n) == ev.router &&
                !injChannels_[n]->dead())
                injChannels_[n]->kill();
            if (topo_.ejectionRouter(n) == ev.router) {
                if (!ejChannels_[n]->dead())
                    ejChannels_[n]->kill();
                routers_[ev.router].killOutput(
                    topo_.ejectionPort(n));
            }
        }
        ++stats_.churnDownEvents;
        if (cfg_.trace != nullptr) {
            cfg_.trace->record(TraceEventType::kChurn, now,
                               routerTracks_[r], Flit{},
                               ev.router,
                               static_cast<std::int32_t>(ev.episode));
        }
        break;
    }
    case ServiceEvent::Kind::kRouterUp: {
        const auto r = static_cast<std::size_t>(ev.router);
        if (routerPermDead_[r] != 0)
            break;
        for (std::size_t i = 0; i < numArcs_; ++i) {
            if (arcs_[i].src == ev.router ||
                arcs_[i].dst == ev.router)
                churnReviveArc(i);
        }
        for (NodeId n = 0; n < topo_.numNodes(); ++n) {
            if (topo_.injectionRouter(n) == ev.router &&
                injChannels_[n]->dead()) {
                // Terminal channels are plain wires: revival is
                // lossless; restore the terminal's credit view from
                // ground truth (mirrors churnReviveArc).
                Channel &ch = *injChannels_[n];
                ch.revive();
                const Router &down =
                    routers_[topo_.injectionRouter(n)];
                const PortId port = topo_.injectionPort(n);
                std::vector<int> cr(
                    static_cast<std::size_t>(cfg_.numVcs));
                for (VcId v = 0; v < cfg_.numVcs; ++v) {
                    const int occ = static_cast<int>(
                        down.inputUnit(port, v).buf.size());
                    const int level = cfg_.vcDepth - occ -
                                      ch.flitsInFlightOnVc(v) -
                                      ch.creditsInFlightOnVc(v);
                    FBFLY_ASSERT(level >= 0 &&
                                 level <= cfg_.vcDepth,
                                 "revive credit level out of range "
                                 "on injection lane of node ", n,
                                 " vc ", v, ": ", level);
                    cr[static_cast<std::size_t>(v)] = level;
                }
                terminals_[n].setCredits(cr);
            }
            if (topo_.ejectionRouter(n) == ev.router) {
                if (ejChannels_[n]->dead())
                    ejChannels_[n]->revive();
                // Terminals never return ejection credits, so the
                // sink's budget is simply restored to "infinite".
                routers_[ev.router].reviveOutput(
                    topo_.ejectionPort(n),
                    std::vector<int>(
                        static_cast<std::size_t>(cfg_.numVcs),
                        Router::kInfiniteCredits));
            }
        }
        ++stats_.churnRepairEvents;
        if (cfg_.trace != nullptr) {
            cfg_.trace->record(TraceEventType::kRepair, now,
                               routerTracks_[r], Flit{},
                               ev.router,
                               static_cast<std::int32_t>(ev.episode));
        }
        break;
    }
    }

    // Repair invalidates stale route decisions everywhere: escape
    // detours chosen while the entity was down are re-decided against
    // the restored topology.  Beyond steering traffic back onto the
    // repaired capacity, this breaks frozen rings of lateral (hot-
    // potato) decisions that can hold a credit cycle closed after
    // every repair has landed.
    if (!ev.isDown()) {
        for (auto &r : routers_)
            r.invalidateRoutes();
    }
}

void
Network::applyChurn(Cycle now)
{
    const auto &events = cfg_.churn->events();
    while (nextService_ < events.size() &&
           events[nextService_].at <= now) {
        applyServiceEvent(events[nextService_++], now);
        // Reconfiguration counts as forward progress: an epoch
        // transition or mass-repair burst must not trip the
        // watchdog while the network re-converges.
        lastProgress_ = now;
    }
}

void
Network::step()
{
    bool reconfigured = false;
    if (nextFault_ < faultSchedule_.size()) {
        const std::size_t first = nextFault_;
        applyFaults(now_);
        reconfigured |= nextFault_ != first;
    }
    if (cfg_.churn != nullptr) {
        const std::size_t first = nextService_;
        applyChurn(now_);
        reconfigured |= nextService_ != first;
    }
    // A topology change can unblock, strand or re-expose work on any
    // component (kills, revives, network-wide route invalidation),
    // so the whole network re-examines itself this cycle.
    if (reconfigured)
        active_.wakeAllNext();

    const Cycle t = now_;
    const auto num_routers =
        static_cast<std::uint32_t>(routers_.size());
    const auto num_comps = static_cast<std::uint32_t>(
        routers_.size() + terminals_.size());

    const bool anyActive = active_.beginCycle(t);
    // Test hook: components with debug-suppressed wakes drop out of
    // the runnable set every cycle, stranding their work the way a
    // genuine missed wake would (sim/liveness.h kernel-bug tests).
    for (const std::uint32_t c : suppressed_)
        active_.deactivate(c);
    // The shadow verifier runs even on idle cycles: an all-idle
    // ActiveSet with actionable work somewhere is the worst miss.
    if (verifyWakes_)
        verifyWakes(t);

    if (anyActive && shardCount_ > 1) {
        stepPhased(t);
    } else if (anyActive) {
        const std::uint64_t ejected0 = stats_.flitsEjected;
        const std::uint64_t injected0 = stats_.flitsInjected;
        const std::uint64_t dropped0 = stats_.flitsDropped;

        active_.forEachIn(0, num_routers, [&](std::uint32_t c) {
            routers_[c].receive(t);
        });
        active_.forEachIn(
            num_routers, num_comps, [&](std::uint32_t c) {
                terminals_[c - num_routers].receive(t);
            });

        // SwitchableRouting may flip the allocator discipline
        // between cycles, so hoist the virtual sequential() call per
        // cycle — never cache it across cycles.
        algoSequential_ = algo_.sequential();
        int moved = 0;
        active_.forEachIn(0, num_routers, [&](std::uint32_t c) {
            Router &r = routers_[c];
            moved += r.routeAndTraverse(t, algo_, algoSequential_);
            // Incremental drop aggregation: only routers that
            // actually dropped sync their deltas, replacing the old
            // unconditional full-router scan.  Still unconditional
            // in effect: routing algorithms may drop packets as
            // unreachable even without a fault schedule
            // (misroute-budget exhaustion, pathological algorithms
            // under test), and the harness's drain loop terminates
            // on stats_.measuredDropped — drops land in the
            // aggregate the same cycle they happen.
            if (r.hasPendingDrops()) {
                r.drainPendingDrops(stats_.flitsDropped,
                                    stats_.packetsUnreachable,
                                    stats_.measuredDropped);
            }
            // Buffered flits (blocked on credits, bandwidth or a
            // dead port) keep their router runnable.
            if (r.bufferedFlits() > 0)
                active_.wakeNext(c);
        });
        active_.forEachIn(
            num_routers, num_comps, [&](std::uint32_t c) {
                Terminal &term = terminals_[c - num_routers];
                term.inject(t);
                // Queued or partially injected packets keep their
                // terminal runnable.
                if (term.sourceQueueLength() > 0 || term.midPacket())
                    active_.wakeNext(c);
            });

        if (moved > 0 || stats_.flitsEjected != ejected0 ||
            stats_.flitsInjected != injected0 ||
            stats_.flitsDropped != dropped0) {
            lastProgress_ = t;
        }
    }

    ++now_;

    if (cfg_.invariantCheckInterval > 0 &&
        now_ % cfg_.invariantCheckInterval == 0) {
        const std::string violation = checkInvariants();
        FBFLY_ASSERT(violation.empty(),
                     "conservation invariant violated at cycle ",
                     now_, ":\n", violation);
    }
}

void
Network::stepPhased(Cycle t)
{
    const auto num_routers =
        static_cast<std::uint32_t>(routers_.size());
    const auto num_comps = static_cast<std::uint32_t>(
        routers_.size() + terminals_.size());

    const std::uint64_t ejected0 = stats_.flitsEjected;
    const std::uint64_t injected0 = stats_.flitsInjected;
    const std::uint64_t dropped0 = stats_.flitsDropped;

    const std::size_t words = active_.maskWords();
    for (ShardContext &sc : shards_) {
        sc.wake.reset(words, t + 1);
        sc.trace.reset();
        sc.term.reset();
        sc.moved = 0;
        sc.dropFlits = 0;
        sc.dropPackets = 0;
        sc.dropMeasured = 0;
    }

    // Hoisted exactly like the sequential loop; nothing in the
    // receive phase can flip the allocator discipline.
    algoSequential_ = algo_.sequential();

    // PHASE A (parallel): routers drain arrivals, terminals drain
    // ejects/credits and plan this cycle's injection from
    // terminal-local state.  Each endpoint of a channel touches a
    // disjoint field set (receiveFlit side vs receiveCredit side),
    // and all wakes/traces go to per-shard staging via TLS.
    pool_->run([&, t](int s) {
        ShardContext &sc = shards_[static_cast<std::size_t>(s)];
        ActiveSet::StageGuard wakes(&sc.wake);
        TraceSink::StageGuard traces(
            cfg_.trace != nullptr ? &sc.trace : nullptr);
        active_.forEachIn(sc.routerLo, sc.routerHi,
                          [&](std::uint32_t c) {
                              routers_[c].receive(t);
                          });
        sc.wake.mark();
        sc.trace.mark();
        active_.forEachIn(sc.termLo, sc.termHi,
                          [&](std::uint32_t c) {
                              Terminal &term =
                                  terminals_[c - num_routers];
                              term.receive(t);
                              term.planInject(t);
                          });
        sc.wake.mark();
        sc.trace.mark();
    });

    // Serial: assign packet/flit ids to the planned injections in
    // ascending terminal order — the exact order the sequential
    // advance phase draws them from the global counters.
    active_.forEachIn(num_routers, num_comps, [&](std::uint32_t c) {
        terminals_[c - num_routers].assignPlannedIds();
    });

    // PHASE B (parallel): routers route + traverse, terminals send
    // their planned flit.  Channel field sets are again disjoint per
    // endpoint (sendFlit side vs sendCredit side).
    pool_->run([&, t](int s) {
        ShardContext &sc = shards_[static_cast<std::size_t>(s)];
        ActiveSet::StageGuard wakes(&sc.wake);
        TraceSink::StageGuard traces(
            cfg_.trace != nullptr ? &sc.trace : nullptr);
        active_.forEachIn(
            sc.routerLo, sc.routerHi, [&](std::uint32_t c) {
                Router &r = routers_[c];
                sc.moved +=
                    r.routeAndTraverse(t, algo_, algoSequential_);
                if (r.hasPendingDrops()) {
                    r.drainPendingDrops(sc.dropFlits, sc.dropPackets,
                                        sc.dropMeasured);
                }
                if (r.bufferedFlits() > 0)
                    active_.wakeNext(c); // staged
            });
        sc.wake.mark();
        sc.trace.mark();
        active_.forEachIn(
            sc.termLo, sc.termHi, [&](std::uint32_t c) {
                Terminal &term = terminals_[c - num_routers];
                term.executeInject(t);
                if (term.sourceQueueLength() > 0 || term.midPacket())
                    active_.wakeNext(c); // staged
            });
        sc.wake.mark();
        sc.trace.mark();
    });

    commitPhased(t);

    int moved = 0;
    for (const ShardContext &sc : shards_)
        moved += sc.moved;
    if (moved > 0 || stats_.flitsEjected != ejected0 ||
        stats_.flitsInjected != injected0 ||
        stats_.flitsDropped != dropped0) {
        lastProgress_ = t;
    }
}

void
Network::commitPhased(Cycle t)
{
    // 1. Timed wakes and trace records, replayed per phase segment
    //    in ascending shard order — shard concatenation of ascending
    //    contiguous id ranges is exactly the sequential call order,
    //    so the wake heap (push order, lastAt_ dedup) and the trace
    //    ring (contents, overwrite behavior) come out bit-identical.
    constexpr std::size_t kSegments = 4;
    for (std::size_t seg = 0; seg < kSegments; ++seg) {
        for (ShardContext &sc : shards_) {
            active_.replayStagedTimers(sc.wake, seg);
            if (cfg_.trace != nullptr)
                cfg_.trace->replayStaged(sc.trace, seg);
        }
    }

    // 2. Next-cycle wake masks: a commutative OR.
    for (ShardContext &sc : shards_)
        active_.mergeStagedMask(sc.wake);

    // 3. Stats and oracle callbacks.  Sequential intra-cycle order is
    //    every eject (receive phase, ascending terminal) before every
    //    inject (advance phase, ascending terminal); Welford /
    //    histogram adds are order-sensitive doubles, so replay in
    //    exactly that order.
    DeliveryOracle *oracle = cfg_.oracle;
    for (ShardContext &sc : shards_) {
        Terminal::ShardSink &k = sc.term;
        stats_.flitsEjected += k.flitsEjected;
        stats_.hopsEjected += k.hopsEjected;
        stats_.packetsEjected += k.packetsEjected;
        for (const Flit &f : k.measuredEjects) {
            if (oracle != nullptr)
                oracle->onEject(f);
            ++stats_.measuredEjected;
            const auto lat = static_cast<double>(t - f.createTime);
            stats_.packetLatency.add(lat);
            stats_.networkLatency.add(
                static_cast<double>(t - f.injectTime));
            stats_.hops.add(f.hops);
            stats_.latencyHist.add(t - f.createTime);
        }
    }
    for (ShardContext &sc : shards_) {
        Terminal::ShardSink &k = sc.term;
        stats_.flitsInjected += k.flitsInjected;
        stats_.pendingPackets += k.pendingPacketsDelta;
        stats_.midPacketTerminals += k.midPacketDelta;
        if (oracle != nullptr) {
            for (const Flit &f : k.measuredInjects)
                oracle->onInject(f);
        }
        stats_.flitsDropped += sc.dropFlits;
        stats_.packetsUnreachable += sc.dropPackets;
        stats_.measuredDropped += sc.dropMeasured;
    }
}

bool
Network::quiescent() const
{
    return stats_.flitsInjected ==
               stats_.flitsEjected + stats_.flitsDropped &&
           stats_.pendingPackets == 0 &&
           stats_.midPacketTerminals == 0;
}

bool
Network::stalled() const
{
    if (cfg_.watchdogCycles == 0 || quiescent())
        return false;
    return now_ > lastProgress_ &&
           now_ - lastProgress_ > cfg_.watchdogCycles;
}

std::string
Network::stallDump(int max_flits) const
{
    std::ostringstream os;
    os << "=== stall dump at cycle " << now_ << " ===\n";
    os << "flits: injected=" << stats_.flitsInjected
       << " ejected=" << stats_.flitsEjected
       << " dropped=" << stats_.flitsDropped
       << " pendingPackets=" << stats_.pendingPackets
       << " lastProgress=" << lastProgress_ << "\n";

    // Kernel scheduler state: which components are woken for the
    // next cycle and what timed wakes remain.  A stall with pending
    // work and an empty wake set is a kernel bug, not a protocol
    // deadlock (see sim/liveness.h).
    const std::size_t num_routers = routers_.size();
    os << "active-set: nextCycle=" << active_.nextCycle()
       << " wake-heap=" << active_.timerCount();
    if (active_.timerCount() > 0)
        os << " nextDeadline=" << active_.nextTimerDeadline();
    if (!suppressed_.empty()) {
        os << " suppressed:";
        for (const std::uint32_t c : suppressed_)
            os << ' ' << c;
    }
    os << "\n  queued-next:";
    int queued = 0;
    active_.forEachQueuedNext([&](std::uint32_t c) {
        constexpr int kMaxListed = 64;
        if (queued < kMaxListed) {
            if (c < num_routers)
                os << " r" << c;
            else
                os << " t" << (c - num_routers);
        } else if (queued == kMaxListed) {
            os << " ...";
        }
        ++queued;
    });
    if (queued == 0)
        os << " (none)";
    os << " (" << queued << " components)\n";

    int shown = 0;
    for (const auto &r : routers_) {
        if (r.bufferedFlits() == 0)
            continue;
        os << "router " << r.id() << " (" << r.bufferedFlits()
           << " buffered";
        if (r.anyOutputDead()) {
            os << "; dead outputs:";
            for (PortId p = 0; p < r.numPorts(); ++p)
                if (!r.outputAlive(p))
                    os << ' ' << p;
        }
        os << ")\n";
        for (PortId p = 0; p < r.numPorts() && shown < max_flits;
             ++p) {
            for (VcId v = 0; v < r.numVcs() && shown < max_flits;
                 ++v) {
                const InputUnit &in = r.inputUnit(p, v);
                if (in.buf.empty())
                    continue;
                const Flit &f = in.buf.front();
                os << "  in(port=" << p << ",vc=" << v
                   << ") depth=" << in.buf.size() << " head{pkt="
                   << f.packet << " src=" << f.src << " dst="
                   << f.dst << " hops=" << f.hops;
                const bool routed =
                    f.routed || (in.routed && in.outPort != kInvalid);
                const PortId op = f.routed ? f.outPort : in.outPort;
                const VcId ov = f.routed ? f.outVc : in.outVc;
                if (routed && op != kInvalid) {
                    os << " -> out(port=" << op << ",vc=" << ov
                       << ") credits=" << r.credits(op, ov)
                       << (r.outputAlive(op) ? "" : " DEAD");
                } else {
                    os << " unrouted";
                }
                os << "}\n";
                ++shown;
            }
        }
    }
    for (std::size_t i = 0; i < numArcs_; ++i) {
        if (channels_[i].flitsInFlight() == 0)
            continue;
        os << "arc " << i << " (" << arcs_[i].src << "->"
           << arcs_[i].dst << ") in-flight="
           << channels_[i].flitsInFlight();
        if (channels_[i].reliable())
            os << " replay=" << channels_[i].replayOccupancy();
        os << (channels_[i].dead() ? " DEAD" : "") << "\n";
    }
    return os.str();
}

std::string
Network::checkInvariants() const
{
    std::ostringstream os;

    // Flit conservation across the whole system.
    std::uint64_t buffered = 0;
    for (const auto &r : routers_)
        buffered += static_cast<std::uint64_t>(r.bufferedFlits());
    std::uint64_t in_flight = 0;
    for (const auto &ch : channels_)
        in_flight += static_cast<std::uint64_t>(ch.flitsInFlight());
    const std::uint64_t accounted = buffered + in_flight +
                                    stats_.flitsEjected +
                                    stats_.flitsDropped;
    if (stats_.flitsInjected != accounted) {
        os << "flit conservation: injected=" << stats_.flitsInjected
           << " != buffered=" << buffered << " + in-flight="
           << in_flight << " + ejected=" << stats_.flitsEjected
           << " + dropped=" << stats_.flitsDropped << "\n";
    }

    // Credit conservation per alive inter-router (arc, VC) lane.
    for (std::size_t i = 0; i < numArcs_; ++i) {
        const Channel &ch = channels_[i];
        if (ch.dead())
            continue; // dead lanes intentionally leak credits
        const auto &arc = arcs_[i];
        const Router &up = routers_[arc.src];
        const Router &down = routers_[arc.dst];
        for (VcId v = 0; v < cfg_.numVcs; ++v) {
            const int credits = up.credits(arc.srcPort, v);
            const int occ =
                down.inputUnit(arc.dstPort, v).buf.size();
            const int flits = ch.flitsInFlightOnVc(v);
            const int back = ch.creditsInFlightOnVc(v);
            if (credits + occ + flits + back != cfg_.vcDepth) {
                os << "credit conservation on arc " << i << " ("
                   << arc.src << "->" << arc.dst << ") vc " << v
                   << ": credits=" << credits << " + occupancy="
                   << occ << " + flits-in-flight=" << flits
                   << " + credits-in-flight=" << back
                   << " != depth=" << cfg_.vcDepth << "\n";
            }
        }
    }

    // Ditto for terminal injection lanes.
    for (NodeId n = 0; n < static_cast<NodeId>(terminals_.size());
         ++n) {
        const Channel &ch = *injChannels_[n];
        if (ch.dead())
            continue;
        const Router &down = routers_[topo_.injectionRouter(n)];
        const PortId port = topo_.injectionPort(n);
        for (VcId v = 0; v < cfg_.numVcs; ++v) {
            const int credits = terminals_[n].credits(v);
            const int occ = down.inputUnit(port, v).buf.size();
            const int flits = ch.flitsInFlightOnVc(v);
            const int back = ch.creditsInFlightOnVc(v);
            if (credits + occ + flits + back != cfg_.vcDepth) {
                os << "credit conservation on injection lane of node "
                   << n << " vc " << v << ": credits=" << credits
                   << " + occupancy=" << occ << " + flits-in-flight="
                   << flits << " + credits-in-flight=" << back
                   << " != depth=" << cfg_.vcDepth << "\n";
            }
        }
    }
    return os.str();
}

LinkStats
Network::linkStats() const
{
    LinkStats total;
    for (std::size_t i = 0; i < numArcs_; ++i)
        total += channels_[i].linkStats();
    return total;
}

std::int64_t
Network::bufferedFlitsOnVc(VcId vc) const
{
    std::int64_t total = 0;
    for (const auto &r : routers_)
        total += r.bufferedFlitsOnVc(vc);
    return total;
}

std::vector<std::uint64_t>
Network::interRouterFlitCounts() const
{
    std::vector<std::uint64_t> counts;
    counts.reserve(numArcs_);
    for (std::size_t i = 0; i < numArcs_; ++i)
        counts.push_back(channels_[i].flitsCarried());
    return counts;
}

NodeId
Network::drawDest(NodeId src, Rng &rng) const
{
    FBFLY_ASSERT(pattern_ != nullptr,
                 "packet without destination and no traffic pattern");
    return pattern_->dest(src, rng);
}

bool
Network::componentHasActionableWork(std::uint32_t c, Cycle at) const
{
    const auto num_routers =
        static_cast<std::uint32_t>(routers_.size());
    if (c < num_routers)
        return routers_[c].hasActionableWork(at);
    return terminals_[c - num_routers].hasActionableWork(at);
}

void
Network::verifyWakes(Cycle t)
{
    ++wakeChecks_;
    if (wakeDivergence_.has_value())
        return; // report the first divergence only
    const auto num_routers =
        static_cast<std::uint32_t>(routers_.size());
    const auto n = static_cast<std::uint32_t>(active_.size());
    for (std::uint32_t c = 0; c < n; ++c) {
        if (active_.activeNow(c) ||
            !componentHasActionableWork(c, t))
            continue;
        const bool injected =
            std::find(suppressed_.begin(), suppressed_.end(), c) !=
            suppressed_.end();
        wakeDivergence_ = WakeDivergence{c, t, injected};
        // A genuine missed wake is a kernel bug — work lost forever.
        // Injected misses (debugSuppressComponent) are recorded for
        // the liveness tests without aborting.
        FBFLY_ASSERT(injected,
                     "wake contract violated at cycle ", t,
                     ": component ", c,
                     c < num_routers ? " (router " : " (terminal ",
                     c < num_routers ? c : c - num_routers,
                     ") has actionable work but was not scheduled");
        return;
    }
}

void
Network::restartAfterRecovery()
{
    // Fold the kill accounting into the aggregate immediately: the
    // harness reads stats (and reports expected losses to the
    // delivery oracle) between steps, and checkInvariants() charges
    // drops against flit conservation from this cycle on.
    for (auto &r : routers_) {
        if (r.hasPendingDrops())
            r.drainPendingDrops(stats_.flitsDropped,
                                stats_.packetsUnreachable,
                                stats_.measuredDropped);
    }
    lastProgress_ = now_;
    // Freed credits, re-exposed routes and truncated remainders can
    // unblock any component; everything re-examines itself.
    active_.wakeAllNext();
}

void
Network::debugSuppressComponent(std::uint32_t c)
{
    FBFLY_ASSERT(c < active_.size(),
                 "debugSuppressComponent range: ", c);
    if (std::find(suppressed_.begin(), suppressed_.end(), c) ==
        suppressed_.end())
        suppressed_.push_back(c);
}

void
Network::debugClearSuppressed()
{
    suppressed_.clear();
    // The stranded components never ran, so their self-sustain wakes
    // never fired; re-wake everything so they resume.
    active_.wakeAllNext();
}

} // namespace fbfly
