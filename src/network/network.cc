#include "network/network.h"

#include "common/log.h"
#include "routing/routing.h"
#include "topology/topology.h"
#include "traffic/traffic_pattern.h"

namespace fbfly
{

Network::Network(const Topology &topo, RoutingAlgorithm &algo,
                 const TrafficPattern *pattern,
                 const NetworkConfig &cfg)
    : topo_(topo), algo_(algo), pattern_(pattern), cfg_(cfg)
{
    FBFLY_ASSERT(algo.numVcs() == cfg.numVcs,
                 "routing algorithm '", algo.name(), "' needs ",
                 algo.numVcs(), " VCs but the network has ",
                 cfg.numVcs);

    Rng master(cfg.seed);
    Rng routerRngs = master.split(0x526f757465ULL);   // "Route"
    Rng terminalRngs = master.split(0x5465726dccULL); // "Term"

    // Single-flit packets use the bypass (speedup) switch path;
    // multi-flit wormhole packets need strict per-VC FIFO order.
    const bool bypass = cfg.packetSize == 1;

    const int num_routers = topo.numRouters();
    routers_.reserve(num_routers);
    for (RouterId r = 0; r < num_routers; ++r) {
        routers_.emplace_back(r, topo.numPorts(r), cfg.numVcs,
                              cfg.vcDepth, routerRngs.split(r),
                              bypass);
    }

    // Inter-router channels.
    const auto arcs = topo.arcs();
    FBFLY_ASSERT(cfg.arcLatencies.empty() ||
                 cfg.arcLatencies.size() == arcs.size(),
                 "arcLatencies must match the topology's arc list");
    for (std::size_t i = 0; i < arcs.size(); ++i) {
        const auto &arc = arcs[i];
        const Cycle latency = cfg.arcLatencies.empty()
            ? cfg.channelLatency : cfg.arcLatencies[i];
        channels_.emplace_back(latency, cfg.channelPeriod);
        Channel *ch = &channels_.back();
        routers_[arc.src].connectOutput(arc.srcPort, ch, cfg.vcDepth);
        routers_[arc.dst].connectInput(arc.dstPort, ch);
    }
    numArcs_ = arcs.size();

    // Terminals and their channels.
    const std::int64_t num_nodes = topo.numNodes();
    terminals_.reserve(num_nodes);
    for (NodeId n = 0; n < num_nodes; ++n) {
        terminals_.emplace_back(n, cfg.numVcs, cfg.vcDepth,
                                terminalRngs.split(n), this);
        Terminal &term = terminals_.back();

        channels_.emplace_back(cfg.terminalLatency, Cycle{1});
        Channel *inj = &channels_.back();
        term.connectToRouter(inj);
        routers_[topo.injectionRouter(n)]
            .connectInput(topo.injectionPort(n), inj);

        channels_.emplace_back(cfg.terminalLatency, Cycle{1});
        Channel *ej = &channels_.back();
        routers_[topo.ejectionRouter(n)]
            .connectOutput(topo.ejectionPort(n), ej,
                           Router::kInfiniteCredits);
        term.connectFromRouter(ej);
    }
}

void
Network::step()
{
    const Cycle t = now_;
    for (auto &r : routers_)
        r.receive(t);
    for (auto &term : terminals_)
        term.receive(t);
    for (auto &r : routers_)
        r.routeAndTraverse(t, algo_);
    for (auto &term : terminals_)
        term.inject(t);
    ++now_;
}

bool
Network::quiescent() const
{
    return stats_.flitsInjected == stats_.flitsEjected &&
           stats_.pendingPackets == 0 &&
           stats_.midPacketTerminals == 0;
}

std::vector<std::uint64_t>
Network::interRouterFlitCounts() const
{
    std::vector<std::uint64_t> counts;
    counts.reserve(numArcs_);
    for (std::size_t i = 0; i < numArcs_; ++i)
        counts.push_back(channels_[i].flitsCarried());
    return counts;
}

NodeId
Network::drawDest(NodeId src, Rng &rng) const
{
    FBFLY_ASSERT(pattern_ != nullptr,
                 "packet without destination and no traffic pattern");
    return pattern_->dest(src, rng);
}

} // namespace fbfly
