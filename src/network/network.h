/**
 * @file
 * Network — the assembled simulator.
 *
 * A Network instantiates routers, channels and terminals from a
 * Topology, drives them cycle by cycle, and aggregates statistics.
 * Traffic is supplied either through a TrafficPattern (destinations
 * drawn at injection) or by enqueueing packets with explicit
 * destinations at terminals.
 */

#ifndef FBFLY_NETWORK_NETWORK_H
#define FBFLY_NETWORK_NETWORK_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "network/active_set.h"
#include "network/channel.h"
#include "network/router.h"
#include "network/shard_pool.h"
#include "network/terminal.h"
#include "obs/trace.h"
#include "sim/stats.h"
#include "topology/topology.h"

namespace fbfly
{

class Topology;
class RoutingAlgorithm;
class TrafficPattern;
class FaultModel;
class ErrorModel;
class ChurnModel;
struct ServiceEvent;
class DeliveryOracle;
class TraceSink;

/**
 * Simulator configuration knobs.
 */
struct NetworkConfig
{
    /** Virtual channels per port (usually the routing algorithm's
     *  requirement). */
    int numVcs = 1;
    /** Buffer depth per VC, in flits.  The paper holds
     *  numVcs * vcDepth = 32 per port (Section 3.2). */
    int vcDepth = 32;
    /** Flits per packet (the paper evaluates single-flit packets). */
    int packetSize = 1;
    /** Inter-router channel latency, cycles (uniform default). */
    Cycle channelLatency = 1;
    /** Optional per-arc latencies (indexed like Topology::arcs());
     *  overrides channelLatency when non-empty.  Used for the
     *  Section 5.2 wire-delay studies. */
    std::vector<Cycle> arcLatencies;
    /** Inter-router cycles per flit; 2 halves channel bandwidth
     *  (used for the constant-bisection hypercube of Figure 6). */
    Cycle channelPeriod = 1;
    /** Terminal (node<->router) channel latency, cycles. */
    Cycle terminalLatency = 1;
    /** Master seed; all component streams derive from it. */
    std::uint64_t seed = 1;

    /**
     * Shards the step loop partitions routers/terminals into
     * (DESIGN.md "Sharded step engine").  1 (the default) runs the
     * sequential loop; N > 1 runs each cycle as barrier-synced
     * phases on N threads with a serial commit, **bit-identical** to
     * the sequential loop for any N — traces, stats, RNG streams and
     * wake order all match (tests/test_shard_determinism.cc).
     * Clamped to the router count; configurations with link-layer
     * retry or an error model fall back to 1 shard (reliable
     * channels carry shared protocol state across phases).
     */
    int shards = 1;

    /** Fault set to apply (nullptr: fault-free).  Must be built over
     *  the same topology and outlive the network.  Arcs and routers
     *  fail at their activation cycles; dead channels refuse flits
     *  and routers expose dead output ports to routing algorithms. */
    const FaultModel *faults = nullptr;

    /**
     * Transient-error model (nullptr: error-free wires).  Must be
     * built over the same topology and outlive the network.  A model
     * with any nonzero rate implicitly enables the link-layer retry
     * protocol on every inter-router channel (terminal channels are
     * short local wires and assumed error-free).
     */
    const ErrorModel *errors = nullptr;

    /**
     * Link-layer retry protocol knobs (window, timeout, backoff
     * cap).  Set linkRetry.enabled to run the protocol even with no
     * error model — e.g. to verify it is timing-transparent on clean
     * wires.
     */
    LinkReliabilityConfig linkRetry;

    /**
     * Dynamic-service (churn) model: a deterministic schedule of
     * link/router down/up events with full repair semantics
     * (nullptr: no churn).  Must be built over the same topology and
     * outlive the network.  A revived channel has its link-layer
     * retry state reset (unacked flits are counted as churn losses),
     * dead-port masks re-open and credit levels are recomputed so
     * every conservation invariant holds across the transition.
     * Entities failed permanently via `faults` are never revived.
     * See docs/FAULTS.md ("Churn and repair").
     */
    const ChurnModel *churn = nullptr;

    /** End-to-end delivery oracle to notify at measured-packet
     *  injection/ejection (nullptr: no auditing).  Must outlive the
     *  network. */
    DeliveryOracle *oracle = nullptr;

    /** Forward-progress watchdog: if no flit moves for this many
     *  cycles while work is pending, stalled() turns true (and step()
     *  keeps running so the caller can collect stallDump()).
     *  0 disables the watchdog. */
    Cycle watchdogCycles = 0;

    /** Run checkInvariants() automatically every this-many cycles and
     *  panic on violation.  0 disables (default: invariants are cheap
     *  to state but O(network) to check). */
    Cycle invariantCheckInterval = 0;

    /**
     * Flit-lifecycle trace sink (nullptr: tracing off — one dead
     * branch per record site; see obs/trace.h).  Must outlive the
     * network.  The network registers one track per router, arc and
     * terminal, in that order, at construction.
     */
    TraceSink *trace = nullptr;

    /**
     * Shadow-kernel wake-contract verifier: every cycle, diff "who
     * would have done work under the pre-active-set full-tick loop"
     * (Router/Terminal::hasActionableWork) against the ActiveSet and
     * panic on the first missed wake — a component with actionable
     * work the kernel did not schedule.  Turns the active-set
     * rewrite's correctness argument into an enforced runtime
     * invariant, at full-loop cost (debug/CI use; the FBFLY_VERIFY_WAKES
     * environment variable force-enables it process-wide).
     */
    bool verifyWakeContract = false;
};

/**
 * First wake-contract divergence seen by the shadow-kernel verifier:
 * a component that the pre-rewrite full-tick loop would have run but
 * the ActiveSet did not schedule.
 */
struct WakeDivergence
{
    /** Component id (routers [0, R), terminals [R, R + N)). */
    std::uint32_t component = 0;
    /** Cycle the missed wake was detected. */
    Cycle cycle = 0;
    /** True when the miss was injected via debugSuppressComponent()
     *  (test hook) rather than a genuine kernel bug. */
    bool injected = false;
};

/**
 * Aggregate simulation statistics.
 */
struct NetworkStats
{
    /** Latency of measured packets: ejection - creation. */
    RunningStats packetLatency;
    /** Latency of measured packets: ejection - injection (excludes
     *  source queueing). */
    RunningStats networkLatency;
    /** Channel traversals of measured packets. */
    RunningStats hops;
    /** Measured packet latency histogram (unit buckets). */
    Histogram latencyHist{4096};

    std::uint64_t flitsInjected = 0;
    std::uint64_t flitsEjected = 0;
    /** Sum of channel traversals (hops) over every ejected flit —
     *  exact (integer), unlike the Welford `hops` which covers only
     *  measured packets.  The conservation property test reconciles
     *  this against per-channel flit counts
     *  (tests/test_conservation.cc). */
    std::uint64_t hopsEjected = 0;
    std::uint64_t packetsEjected = 0;
    std::uint64_t measuredCreated = 0;
    std::uint64_t measuredEjected = 0;

    /** Flits dropped by routers (unreachable destinations or
     *  wormhole truncation at a failed link). */
    std::uint64_t flitsDropped = 0;
    /** Packets dropped as unreachable (counted at the tail flit). */
    std::uint64_t packetsUnreachable = 0;
    /** Dropped packets belonging to the measurement sample. */
    std::uint64_t measuredDropped = 0;

    /** Packets sitting in source queues. */
    std::int64_t pendingPackets = 0;
    /** Terminals currently mid-packet (wormhole injection). */
    int midPacketTerminals = 0;

    /** @name Dynamic-service (churn) accounting @{ */
    /** Down (link/router) service events applied so far. */
    std::uint64_t churnDownEvents = 0;
    /** Repair (link/router) service events applied so far. */
    std::uint64_t churnRepairEvents = 0;
    /** Flits lost at link repair: unacked go-back-N replay state of
     *  a revived reliable channel (folded into flitsDropped). */
    std::uint64_t churnFlitsLost = 0;
    /** Packets lost at link repair (folded into
     *  packetsUnreachable). */
    std::uint64_t churnPacketsLost = 0;
    /** Churn-lost packets belonging to the measurement sample
     *  (folded into measuredDropped — the delivery oracle treats
     *  them as expected drops). */
    std::uint64_t churnMeasuredLost = 0;
    /** @} */
};

/**
 * Result of a pre-flight configuration validation.
 */
struct ValidationReport
{
    /** Human-readable problems; empty when the config is sound. */
    std::vector<std::string> issues;

    bool ok() const { return issues.empty(); }

    /** All issues joined with newlines ("" when ok). */
    std::string summary() const;
};

/**
 * The assembled, runnable network.
 */
class Network
{
  public:
    /**
     * Pre-flight check of a (topology, routing, config) triple —
     * rejects inconsistent configurations before they can corrupt or
     * hang a simulation:
     *  - VC count below the routing algorithm's requirement;
     *  - non-positive buffer depths / packet sizes / latencies;
     *  - arcLatencies that do not match the topology's arc list;
     *  - arcs referencing out-of-range routers or ports, or wiring
     *    the same (router, port) twice;
     *  - terminal injection/ejection ports out of range or colliding
     *    with inter-router ports;
     *  - fault sets built over a different topology, or that
     *    disconnect (or isolate) a terminal-hosting router.
     *
     * Pure function of its inputs; does not build the network.
     */
    static ValidationReport validate(const Topology &topo,
                                     const RoutingAlgorithm &algo,
                                     const NetworkConfig &cfg);

    /**
     * Build a network.
     *
     * @param topo   static structure (must outlive the network).
     * @param algo   routing algorithm (must outlive the network);
     *               its numVcs() must equal cfg.numVcs.
     * @param pattern traffic pattern for destination draws, or
     *               nullptr if all packets carry explicit
     *               destinations.
     * @param cfg    simulator configuration.
     */
    Network(const Topology &topo, RoutingAlgorithm &algo,
            const TrafficPattern *pattern, const NetworkConfig &cfg);

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /** Advance one cycle. */
    void step();

    /** Current cycle (cycles completed). */
    Cycle now() const { return now_; }

    /** Shards the step loop actually runs with (cfg.shards after
     *  clamping and the reliable-link fallback). */
    int shardCount() const { return shardCount_; }

    Terminal &terminal(NodeId n) { return terminals_[n]; }
    const Terminal &terminal(NodeId n) const { return terminals_[n]; }
    Router &router(RouterId r) { return routers_[r]; }
    const Router &router(RouterId r) const { return routers_[r]; }
    int numRouters() const { return static_cast<int>(routers_.size()); }
    std::int64_t numNodes() const
    {
        return static_cast<std::int64_t>(terminals_.size());
    }

    const Topology &topologyRef() const { return topo_; }

    NetworkStats &stats() { return stats_; }
    const NetworkStats &stats() const { return stats_; }

    /** True when no packet or flit exists anywhere in the system
     *  (dropped flits count as having left). */
    bool quiescent() const;

    /** @name Self-checking (watchdog + conservation invariants) @{ */

    /**
     * Forward-progress watchdog: true when cfg.watchdogCycles > 0,
     * work is pending (flits in the network or packets queued), and
     * nothing has moved for more than cfg.watchdogCycles cycles —
     * i.e. the network is deadlocked or livelocked.
     */
    bool stalled() const;

    /** Cycle of the last observed flit movement. */
    Cycle lastProgressCycle() const { return lastProgress_; }

    /**
     * Diagnostic dump of stuck state: per-router buffered flits with
     * their (routed) output ports, VC credit levels, channel
     * liveness, and in-flight counts.  Non-empty whenever any flit
     * is buffered or in flight.
     */
    std::string stallDump(int max_flits = 32) const;

    /**
     * Per-cycle conservation invariants, checkable between steps:
     *  - flit conservation: flits injected == flits buffered in
     *    routers + in flight on channels + ejected + dropped;
     *  - credit conservation per alive inter-router (arc, VC) lane:
     *    upstream credits + downstream buffer occupancy + flits in
     *    flight + credits in flight == vcDepth;
     *  - ditto for terminal injection lanes;
     *  - buffered-flit counters match buffer contents.
     *
     * @return empty string when all invariants hold, else a
     *         description of the first violations.
     */
    std::string checkInvariants() const;

    /** @} */

    /** Flits carried so far by each inter-router channel, indexed
     *  like Topology::arcs().  Snapshot before/after a window to
     *  compute channel utilizations (load-balance diagnostics).
     *  With link-level retry enabled this counts wire *attempts*
     *  (retransmissions consume bandwidth like any other flit). */
    std::vector<std::uint64_t> interRouterFlitCounts() const;

    /** Link-layer reliability counters summed over every
     *  inter-router channel (all zero when the retry protocol is
     *  off).  See LinkStats. */
    LinkStats linkStats() const;

    /** The delivery oracle this network reports to (may be null). */
    DeliveryOracle *oracle() const { return cfg_.oracle; }

    /** @name Observability (docs/OBSERVABILITY.md) @{ */

    /** The trace sink events go to (may be null). */
    TraceSink *traceSink() const { return cfg_.trace; }

    /** Virtual channels per port. */
    int numVcs() const { return cfg_.numVcs; }

    /** Inter-router channel count (== Topology::arcs().size()). */
    std::size_t numArcs() const { return numArcs_; }

    /** Trace track id of inter-router channel @p arc, or -1 when no
     *  trace sink is attached. */
    std::int32_t arcTrack(std::size_t arc) const
    {
        return cfg_.trace != nullptr
                   ? arcTracks_[arc]
                   : std::int32_t{-1};
    }

    /** Flits buffered network-wide on virtual channel @p vc
     *  (occupancy sampling, obs/obs_sampler.h). */
    std::int64_t bufferedFlitsOnVc(VcId vc) const;

    /** @} */

    /** @name Services used by terminals @{ */
    NodeId drawDest(NodeId src, Rng &rng) const;
    int packetSize() const { return cfg_.packetSize; }
    PacketId nextPacketId() { return nextPacket_++; }
    FlitId nextFlitId() { return nextFlit_++; }
    /** @} */

    /** @name Liveness introspection & recovery (sim/liveness.h) @{ */

    /** The directed inter-router arc list this network was wired
     *  from (indexed like Topology::arcs()). */
    const std::vector<Topology::Arc> &arcList() const { return arcs_; }

    /** The channel carrying inter-router arc @p i. */
    const Channel &arcChannel(std::size_t i) const
    {
        return channels_[i];
    }

    /** Node @p n's injection (node -> router) channel. */
    const Channel &injectionChannel(NodeId n) const
    {
        return *injChannels_[static_cast<std::size_t>(n)];
    }

    /** Node @p n's ejection (router -> node) channel. */
    const Channel &ejectionChannel(NodeId n) const
    {
        return *ejChannels_[static_cast<std::size_t>(n)];
    }

    /** The kernel's runnable-component scheduler (diagnosis only). */
    const ActiveSet &activeSet() const { return active_; }

    /** Trace track id of router @p r, or -1 when no trace sink is
     *  attached. */
    std::int32_t routerTrack(RouterId r) const
    {
        return cfg_.trace != nullptr
                   ? routerTracks_[static_cast<std::size_t>(r)]
                   : std::int32_t{-1};
    }

    /**
     * Restart after a liveness recovery action (sim/liveness.h):
     * folds any pending router drop deltas into the aggregate stats
     * (so killed victims are visible to conservation checks and the
     * delivery oracle's expected-loss accounting this very cycle),
     * resets the forward-progress watermark, and wakes every
     * component so freed credits and re-exposed routes are acted on.
     */
    void restartAfterRecovery();

    /**
     * Test hook: permanently drop component @p c from every cycle's
     * runnable set, simulating a lost wake.  The component's work is
     * stranded exactly as a kernel bug would strand it — the shadow
     * verifier reports the divergence as injected, and the liveness
     * classifier must diagnose the resulting stall as a kernel bug.
     */
    void debugSuppressComponent(std::uint32_t c);

    /** Undo debugSuppressComponent() (recovery can then proceed). */
    void debugClearSuppressed();

    /** Shadow-kernel verifier: the first missed-wake divergence
     *  observed, if any (empty when the verifier is off or the wake
     *  contract held every checked cycle). */
    const std::optional<WakeDivergence> &wakeDivergence() const
    {
        return wakeDivergence_;
    }

    /** Cycles checked by the shadow-kernel verifier so far. */
    std::uint64_t wakeChecks() const { return wakeChecks_; }

    /** True when the shadow-kernel verifier is running (config flag
     *  or FBFLY_VERIFY_WAKES environment variable). */
    bool verifyingWakes() const { return verifyWakes_; }

    /** One component's work/wake state for the verifier and the
     *  liveness classifier's kernel-bug check. */
    bool componentHasActionableWork(std::uint32_t c, Cycle at) const;

    /** @} */

  private:
    /** Activate every fault whose cycle is <= @p now. */
    void applyFaults(Cycle now);

    /** @name Dynamic service (churn/repair) @{ */

    /** Apply every churn event whose cycle is <= @p now. */
    void applyChurn(Cycle now);

    /** Apply one service event (kill or repair). */
    void applyServiceEvent(const ServiceEvent &ev, Cycle now);

    /** Register one more down-cause on arc @p i (link episode or
     *  incident-router episode); kills the channel on 0 -> 1. */
    void churnKillArc(std::size_t i);

    /** Drop one down-cause on arc @p i; revives the channel (and
     *  recomputes upstream credits) when the count reaches zero. */
    void churnReviveArc(std::size_t i);

    /** @} */

    const Topology &topo_;
    RoutingAlgorithm &algo_;
    const TrafficPattern *pattern_;
    NetworkConfig cfg_;

    Cycle now_ = 0;
    PacketId nextPacket_ = 0;
    FlitId nextFlit_ = 0;

    /** All channels (inter-router by arc index, then one
     *  injection + one ejection channel per node).  Sized exactly
     *  once with reserve() before wiring — pointers into it stay
     *  stable and the storage is one contiguous allocation (the
     *  memory-lean contract for 100k-terminal networks). */
    std::vector<Channel> channels_;
    std::vector<Router> routers_;
    std::vector<Terminal> terminals_;
    std::vector<Topology::Arc> arcs_;
    std::size_t numArcs_ = 0;
    /** Terminal-side channels by node (fault application). */
    std::vector<Channel *> injChannels_;
    std::vector<Channel *> ejChannels_;

    /** Pending fault activations, sorted by cycle. */
    struct FaultEvent
    {
        Cycle at;
        /** Arc index, or kInvalid for a router failure. */
        std::int64_t arc;
        RouterId router;
    };
    std::vector<FaultEvent> faultSchedule_;
    std::size_t nextFault_ = 0;

    /** @name Dynamic-service (churn) state @{ */
    /** Next unapplied event in cfg_.churn->events(). */
    std::size_t nextService_ = 0;
    /** Per-arc count of active down-causes (its own link episode
     *  plus any incident-router episode); the channel is dead while
     *  the count is nonzero.  Empty when cfg_.churn is null. */
    std::vector<int> arcDownCauses_;
    /** Arcs/routers failed permanently by cfg_.faults — churn never
     *  kills or revives these. */
    std::vector<char> arcPermDead_;
    std::vector<char> routerPermDead_;
    /** @} */

    /** Shadow-kernel wake-contract verifier: run the full-loop work
     *  predicate over every component and diff it against the
     *  ActiveSet at cycle @p t (after beginCycle, before any phase
     *  runs). */
    void verifyWakes(Cycle t);

    /** Forward-progress watermark. */
    Cycle lastProgress_ = 0;

    /** @name Shadow-kernel verifier state @{ */
    bool verifyWakes_ = false;
    std::uint64_t wakeChecks_ = 0;
    std::optional<WakeDivergence> wakeDivergence_;
    /** Components with debug-suppressed wakes (test hook; empty in
     *  normal operation). */
    std::vector<std::uint32_t> suppressed_;
    /** @} */

    /** @name Sharded step engine (DESIGN.md) @{ */

    /** One shard: a contiguous router range + a contiguous terminal
     *  range, plus the staging buffers its phase work writes into
     *  (merged/replayed by the serial commit). */
    struct ShardContext
    {
        /** Component-id ranges [lo, hi): routers in [0, R),
         *  terminals in [R, R + N). */
        std::uint32_t routerLo = 0;
        std::uint32_t routerHi = 0;
        std::uint32_t termLo = 0;
        std::uint32_t termHi = 0;

        ActiveSet::WakeStage wake;
        TraceSink::Stage trace;
        Terminal::ShardSink term;

        /** Flits moved by this shard's routers (progress watchdog). */
        int moved = 0;
        /** Router drop deltas (drainPendingDrops). */
        std::uint64_t dropFlits = 0;
        std::uint64_t dropPackets = 0;
        std::uint64_t dropMeasured = 0;
    };

    /** One cycle of the phased (shards > 1) engine; t == now_. */
    void stepPhased(Cycle t);

    /** Serial commit: merge/replay every shard's staged work in
     *  ascending shard order (== ascending component id). */
    void commitPhased(Cycle t);

    /** Effective shard count (clamp + reliable-link fallback). */
    int shardCount_ = 1;
    std::vector<ShardContext> shards_;
    /** Workers for the parallel phases (null when shardCount_==1). */
    std::unique_ptr<PhasePool> pool_;

    /** @} */

    /** Runnable-component scheduler: routers are components
     *  [0, R), terminals [R, R + N).  Idle components are skipped
     *  by step() (see src/network/active_set.h and DESIGN.md). */
    ActiveSet active_;
    /** algo_.sequential() hoisted once per cycle (SwitchableRouting
     *  may change it between cycles, so it cannot be cached at
     *  construction). */
    bool algoSequential_ = false;

    /** Trace track ids of inter-router channels (empty when
     *  cfg_.trace is null). */
    std::vector<std::int32_t> arcTracks_;
    /** Trace track ids of routers (empty when cfg_.trace is null). */
    std::vector<std::int32_t> routerTracks_;

    NetworkStats stats_;
};

} // namespace fbfly

#endif // FBFLY_NETWORK_NETWORK_H
