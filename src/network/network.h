/**
 * @file
 * Network — the assembled simulator.
 *
 * A Network instantiates routers, channels and terminals from a
 * Topology, drives them cycle by cycle, and aggregates statistics.
 * Traffic is supplied either through a TrafficPattern (destinations
 * drawn at injection) or by enqueueing packets with explicit
 * destinations at terminals.
 */

#ifndef FBFLY_NETWORK_NETWORK_H
#define FBFLY_NETWORK_NETWORK_H

#include <deque>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "network/channel.h"
#include "network/router.h"
#include "network/terminal.h"
#include "sim/stats.h"

namespace fbfly
{

class Topology;
class RoutingAlgorithm;
class TrafficPattern;

/**
 * Simulator configuration knobs.
 */
struct NetworkConfig
{
    /** Virtual channels per port (usually the routing algorithm's
     *  requirement). */
    int numVcs = 1;
    /** Buffer depth per VC, in flits.  The paper holds
     *  numVcs * vcDepth = 32 per port (Section 3.2). */
    int vcDepth = 32;
    /** Flits per packet (the paper evaluates single-flit packets). */
    int packetSize = 1;
    /** Inter-router channel latency, cycles (uniform default). */
    Cycle channelLatency = 1;
    /** Optional per-arc latencies (indexed like Topology::arcs());
     *  overrides channelLatency when non-empty.  Used for the
     *  Section 5.2 wire-delay studies. */
    std::vector<Cycle> arcLatencies;
    /** Inter-router cycles per flit; 2 halves channel bandwidth
     *  (used for the constant-bisection hypercube of Figure 6). */
    Cycle channelPeriod = 1;
    /** Terminal (node<->router) channel latency, cycles. */
    Cycle terminalLatency = 1;
    /** Master seed; all component streams derive from it. */
    std::uint64_t seed = 1;
};

/**
 * Aggregate simulation statistics.
 */
struct NetworkStats
{
    /** Latency of measured packets: ejection - creation. */
    RunningStats packetLatency;
    /** Latency of measured packets: ejection - injection (excludes
     *  source queueing). */
    RunningStats networkLatency;
    /** Channel traversals of measured packets. */
    RunningStats hops;
    /** Measured packet latency histogram (unit buckets). */
    Histogram latencyHist{4096};

    std::uint64_t flitsInjected = 0;
    std::uint64_t flitsEjected = 0;
    std::uint64_t packetsEjected = 0;
    std::uint64_t measuredCreated = 0;
    std::uint64_t measuredEjected = 0;

    /** Packets sitting in source queues. */
    std::int64_t pendingPackets = 0;
    /** Terminals currently mid-packet (wormhole injection). */
    int midPacketTerminals = 0;
};

/**
 * The assembled, runnable network.
 */
class Network
{
  public:
    /**
     * Build a network.
     *
     * @param topo   static structure (must outlive the network).
     * @param algo   routing algorithm (must outlive the network);
     *               its numVcs() must equal cfg.numVcs.
     * @param pattern traffic pattern for destination draws, or
     *               nullptr if all packets carry explicit
     *               destinations.
     * @param cfg    simulator configuration.
     */
    Network(const Topology &topo, RoutingAlgorithm &algo,
            const TrafficPattern *pattern, const NetworkConfig &cfg);

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /** Advance one cycle. */
    void step();

    /** Current cycle (cycles completed). */
    Cycle now() const { return now_; }

    Terminal &terminal(NodeId n) { return terminals_[n]; }
    Router &router(RouterId r) { return routers_[r]; }
    int numRouters() const { return static_cast<int>(routers_.size()); }
    std::int64_t numNodes() const
    {
        return static_cast<std::int64_t>(terminals_.size());
    }

    const Topology &topologyRef() const { return topo_; }

    NetworkStats &stats() { return stats_; }
    const NetworkStats &stats() const { return stats_; }

    /** True when no packet or flit exists anywhere in the system. */
    bool quiescent() const;

    /** Flits carried so far by each inter-router channel, indexed
     *  like Topology::arcs().  Snapshot before/after a window to
     *  compute channel utilizations (load-balance diagnostics). */
    std::vector<std::uint64_t> interRouterFlitCounts() const;

    /** @name Services used by terminals @{ */
    NodeId drawDest(NodeId src, Rng &rng) const;
    int packetSize() const { return cfg_.packetSize; }
    PacketId nextPacketId() { return nextPacket_++; }
    FlitId nextFlitId() { return nextFlit_++; }
    /** @} */

  private:
    const Topology &topo_;
    RoutingAlgorithm &algo_;
    const TrafficPattern *pattern_;
    NetworkConfig cfg_;

    Cycle now_ = 0;
    PacketId nextPacket_ = 0;
    FlitId nextFlit_ = 0;

    std::deque<Channel> channels_;
    std::vector<Router> routers_;
    std::vector<Terminal> terminals_;
    std::size_t numArcs_ = 0;

    NetworkStats stats_;
};

} // namespace fbfly

#endif // FBFLY_NETWORK_NETWORK_H
