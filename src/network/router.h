/**
 * @file
 * Single-cycle input-queued virtual-channel router.
 *
 * This models the router of paper Section 3.2: an input-queued switch
 * with credit-based flow control and "sufficient switch speedup" so
 * that the switch itself never limits throughput.  We realize the
 * speedup idealization as input speedup: each output port accepts at
 * most one flit per cycle (links carry one flit per `period` cycles —
 * the physical limit), but an input port may forward flits from
 * several of its VCs in the same cycle, so allocation matching never
 * creates head-of-line loss.
 *
 * Adaptive routing algorithms estimate output queue lengths from
 * credit counts (occupancy of the downstream input buffer) plus a
 * count of flits already committed to the output by earlier routing
 * decisions.  The commitment update discipline implements the greedy
 * vs sequential allocators of Section 3.1: a sequential allocator
 * applies each decision's commitment before the next input decides;
 * a greedy allocator defers all of a cycle's commitments until every
 * input has decided on the same snapshot.
 */

#ifndef FBFLY_NETWORK_ROUTER_H
#define FBFLY_NETWORK_ROUTER_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "network/buffer.h"
#include "network/channel.h"
#include "routing/routing.h"

namespace fbfly
{

class TraceSink;

/**
 * One router of the simulated network.
 */
class Router
{
  public:
    /** Credit level used for sink (terminal ejection) outputs. */
    static constexpr int kInfiniteCredits = 1 << 28;

    /**
     * @param id        router identifier.
     * @param num_ports port count (terminal + inter-router).
     * @param num_vcs   virtual channels per port.
     * @param vc_depth  buffer depth per VC, in flits.
     * @param rng       private random stream (tie-breaks).
     * @param bypass    single-flit speedup mode: routes are decided
     *                  at buffer entry and any buffered flit may be
     *                  granted, so a blocked flit never blocks the
     *                  ones behind it.  Requires single-flit packets
     *                  (the paper's configuration); multi-flit
     *                  wormhole uses the strict FIFO path.
     */
    Router(RouterId id, int num_ports, int num_vcs, int vc_depth,
           Rng rng, bool bypass = true);

    RouterId id() const { return id_; }
    int numPorts() const { return numPorts_; }
    int numVcs() const { return numVcs_; }
    int vcDepth() const { return vcDepth_; }

    /** @name Wiring (called by Network during construction) @{ */

    /** Attach the channel that delivers flits into @p port. */
    void connectInput(PortId port, Channel *ch);

    /**
     * Attach the channel this router transmits on from @p port.
     *
     * @param downstream_depth credit budget per VC, i.e. the depth of
     *        the buffer at the far end (kInfiniteCredits for sinks).
     */
    void connectOutput(PortId port, Channel *ch, int downstream_depth);

    /** @} */

    /** @name Per-cycle phases (called by Network in order) @{ */

    /** Drain arriving flits into input buffers and arriving credits. */
    void receive(Cycle now);

    /**
     * Route and traverse with "sufficient switch speedup"
     * (Section 3.2): repeated rounds of routing decisions for newly
     * exposed heads followed by switch allocation, until no flit
     * moves.  Each output channel still carries at most one flit per
     * `period` cycles (the physical link limit, enforced by the
     * channel), but an input FIFO may drain several flits in one
     * cycle — eliminating the head-of-line blocking a speedup-1
     * input-queued switch would add (the classic 58.6% limit), which
     * the paper explicitly idealizes away.
     *
     * @return flits that made progress this cycle (switch traversals
     *         plus drops) — the forward-progress watchdog's signal.
     *
     * @param sequential the algorithm's allocator discipline,
     *        hoisted by the caller (the kernel resolves the virtual
     *        `algo.sequential()` once per cycle instead of once per
     *        router; see Network::step).
     */
    int routeAndTraverse(Cycle now, RoutingAlgorithm &algo,
                         bool sequential);

    /** Convenience overload resolving the allocator discipline from
     *  @p algo (unit tests drive routers cycle by cycle). */
    int routeAndTraverse(Cycle now, RoutingAlgorithm &algo)
    {
        return routeAndTraverse(now, algo, algo.sequential());
    }

    /** @} */

    /** @name Fault handling @{ */

    /**
     * Mark output @p port failed (its channel refuses flits from now
     * on).  Flits already routed to the port are re-exposed to the
     * routing algorithm so fault-aware algorithms can steer them
     * around the failure; a wormhole packet caught mid-traversal is
     * truncated (its remaining flits are dropped and counted).
     * Called by Network when a FaultModel event activates.
     */
    void killOutput(PortId port);

    /**
     * Re-open output @p port after a repair (churn studies).  The
     * caller supplies the per-VC credit levels to restore — the
     * Network computes them from the downstream buffer occupancy (and
     * any in-flight flits/credits the revived channel retained) so
     * the credit-conservation invariant holds from this cycle on.
     * No-op when the port is already alive.
     */
    void reviveOutput(PortId port, const std::vector<int> &credits);

    /**
     * Invalidate every route decision whose packet has not started
     * traversing, so the next routing pass re-decides against the
     * current topology.  Called by Network after a repair event:
     * decisions made while an entity was down (escape detours,
     * hot-potato laterals around the failure) are stale once the
     * capacity returns — and a frozen ring of lateral decisions can
     * otherwise hold a credit cycle closed forever, wedging the
     * network long after every repair landed.
     */
    void invalidateRoutes();

    /** True while output @p port is alive (routing candidate mask). */
    bool outputAlive(PortId port) const
    {
        return aliveOut_[static_cast<std::size_t>(port)] != 0;
    }

    /** True when at least one output port has been killed. */
    bool anyOutputDead() const { return deadOutputs_ > 0; }

    /** Flits dropped by this router (unreachable/truncated). */
    std::uint64_t droppedFlits() const { return droppedFlits_; }
    /** Packets dropped (counted at their tail flit). */
    std::uint64_t droppedPackets() const { return droppedPackets_; }
    /** Dropped packets that belonged to the measurement sample. */
    std::uint64_t droppedMeasured() const { return droppedMeasured_; }

    /** Drops not yet folded into the network-wide stats. */
    bool hasPendingDrops() const { return pendingDropFlits_ != 0; }

    /** Move the not-yet-aggregated drop deltas into the caller's
     *  counters (incremental replacement for the old full-router
     *  scan; see Network::step). */
    void drainPendingDrops(std::uint64_t &flits, std::uint64_t &packets,
                           std::uint64_t &measured)
    {
        flits += pendingDropFlits_;
        packets += pendingDropPackets_;
        measured += pendingDropMeasured_;
        pendingDropFlits_ = 0;
        pendingDropPackets_ = 0;
        pendingDropMeasured_ = 0;
    }

    /** @} */

    /** @name Queue state for adaptive routing @{ */

    /**
     * Estimated queue length of output @p port: downstream buffer
     * occupancy inferred from credits, plus flits committed to the
     * port by routing decisions whose flits have not yet departed.
     */
    int estimatedQueue(PortId port) const;

    /** Credits available on (port, vc). */
    int credits(PortId port, VcId vc) const;

    /** @} */

    /** Random stream for routing tie-breaks. */
    Rng &rng() { return rng_; }

    /** Total flits buffered in this router's input units. */
    int bufferedFlits() const { return bufferedFlits_; }

    /** Flits buffered on virtual channel @p vc across all input
     *  ports (per-VC occupancy sampling, docs/OBSERVABILITY.md). */
    int bufferedFlitsOnVc(VcId vc) const;

    /** Input unit accessor for tests. */
    const InputUnit &inputUnit(PortId port, VcId vc) const;

    /** The channel feeding input @p port (nullptr if unwired). */
    const Channel *inputChannel(PortId port) const
    {
        return inputChannels_[static_cast<std::size_t>(port)];
    }

    /** The channel transmitting from output @p port (nullptr if
     *  unwired). */
    const Channel *outputChannel(PortId port) const
    {
        return outputs_[static_cast<std::size_t>(port)].channel;
    }

    /** Flits committed to output @p port by routing decisions whose
     *  flits have not yet departed (liveness diagnosis). */
    int committedTo(PortId port) const
    {
        return outputs_[static_cast<std::size_t>(port)].committed;
    }

    /** Input-unit index currently owning (out @p port, @p vc), or -1
     *  when the lane is free (wormhole wait-for edges). */
    int vcOwner(PortId port, VcId vc) const
    {
        return outputs_[static_cast<std::size_t>(port)]
            .vcOwner[static_cast<std::size_t>(vc)];
    }

    /**
     * Would the pre-rewrite full-tick loop have done anything with
     * this router at @p now?  True when any flit is buffered, any
     * input channel has an arrival due, or any output channel has a
     * credit arrival or link-layer work (acks/timeouts/resends)
     * pending.  The active-set wake contract requires the router to
     * be scheduled whenever this holds — the shadow-kernel verifier
     * diffs this predicate against the ActiveSet every cycle, and
     * the liveness classifier uses it to tell a stranded component
     * (kernel bug) from a genuinely blocked one.
     */
    bool hasActionableWork(Cycle now) const;

    /**
     * Deadlock recovery: forcibly drop the packet whose head flit is
     * buffered (and blocked) at the front of routable work in input
     * unit (@p port, @p vc).  The victim's buffered flits are
     * accounted exactly like routing drops (credits returned
     * upstream, drop counters advanced, kDrop trace events), its
     * output commitment is released, and — for a wormhole packet
     * whose tail has not yet arrived — the unit is left in dropping
     * state so the in-flight remainder is discarded on arrival.
     *
     * @return flits dropped now (0 when the unit holds no killable
     *         packet head).
     */
    int killVictimPacket(PortId port, VcId vc, Cycle now);

    /** Attach a trace sink (nullptr disables; see obs/trace.h).
     *  @p track is this router's timeline row. */
    void setTrace(TraceSink *sink, std::int32_t track)
    {
        trace_ = sink;
        traceTrack_ = track;
    }

  private:
    struct OutputUnit
    {
        Channel *channel = nullptr;
        std::vector<int> credits; // per VC
        /** -1 free, else the input-unit index holding the VC. */
        std::vector<int> vcOwner;
        int downstreamDepth = 0;
        /** Flits committed by routing decisions, not yet departed. */
        int committed = 0;
        /** Round-robin pointer over input units. */
        int rrPtr = 0;
    };

    int unitIndex(PortId port, VcId vc) const
    {
        return static_cast<int>(port) * numVcs_ + vc;
    }

    void markOccupied(int unit);

    /** One routing pass over unrouted heads; returns flits dropped
     *  (unreachable packets / wormhole truncation). */
    int routePass(Cycle now, RoutingAlgorithm &algo, bool sequential);

    /** One allocation pass; returns the number of flits granted. */
    int allocatePass(Cycle now);

    /** Account one dropped flit and return its buffer credit. */
    void accountDrop(const Flit &f, int unit, Cycle now);

    RouterId id_;
    int numPorts_;
    int numVcs_;
    int vcDepth_;
    Rng rng_;
    bool bypass_;
    int unroutedFlits_ = 0;

    std::vector<InputUnit> inputs_;     // [port * numVcs + vc]
    std::vector<Channel *> inputChannels_; // [port]
    std::vector<OutputUnit> outputs_;   // [port]

    /** Input units that may hold flits (lazily compacted). */
    std::vector<int> occupied_;
    std::vector<char> inOccupiedList_;
    int bufferedFlits_ = 0;

    /** Scratch: per-output (unit, buffer index) switch candidates. */
    std::vector<std::vector<std::pair<int, int>>> candidates_;
    std::vector<int> usedOutputs_;
    std::vector<int> needRoute_;

    /** Scratch: arbitration winners awaiting execution. */
    struct Grant
    {
        PortId port;
        int unit;
        int index;
    };
    std::vector<Grant> winners_;

    /** Scratch: (port,vc) pairs found blocked in the current
     *  allocation pass, so repeated flits skip the checks. */
    std::vector<std::uint32_t> blockedTag_;
    std::uint32_t passTag_ = 0;

    /** Scratch: deferred commitments for greedy allocators. */
    std::vector<std::pair<PortId, int>> deferredCommits_;

    /** Rotating start offset for routing-order fairness. */
    int routeRotate_ = 0;

    /** Per-output liveness mask (killOutput clears entries). */
    std::vector<char> aliveOut_;
    int deadOutputs_ = 0;
    /** Input units currently discarding a truncated packet. */
    int droppingUnits_ = 0;

    /** Drop accounting (aggregated into NetworkStats by Network). */
    std::uint64_t droppedFlits_ = 0;
    std::uint64_t droppedPackets_ = 0;
    std::uint64_t droppedMeasured_ = 0;
    /** Deltas since the Network last drained them (incremental
     *  aggregation — the kernel only syncs routers that dropped). */
    std::uint64_t pendingDropFlits_ = 0;
    std::uint64_t pendingDropPackets_ = 0;
    std::uint64_t pendingDropMeasured_ = 0;

    /** Observability (nullptr: tracing off — one dead branch per
     *  record site). */
    TraceSink *trace_ = nullptr;
    std::int32_t traceTrack_ = -1;
};

} // namespace fbfly

#endif // FBFLY_NETWORK_ROUTER_H
