#include "network/channel.h"

#include <algorithm>
#include <limits>

#include "common/log.h"
#include "obs/trace.h"

namespace fbfly
{

namespace
{

/** Link sequence numbers are uint64; trace operands are int32.
 *  Saturate (sequences big enough to clip never occur in tests). */
std::int32_t
saturateSeq(std::uint64_t seq)
{
    constexpr auto kMax = static_cast<std::uint64_t>(
        std::numeric_limits<std::int32_t>::max());
    return static_cast<std::int32_t>(std::min(seq, kMax));
}

} // namespace

LinkStats &
LinkStats::operator+=(const LinkStats &o)
{
    attempts += o.attempts;
    retransmits += o.retransmits;
    corruptInjected += o.corruptInjected;
    eraseInjected += o.eraseInjected;
    crcRejected += o.crcRejected;
    dupSuppressed += o.dupSuppressed;
    nacksSent += o.nacksSent;
    acksSent += o.acksSent;
    timeouts += o.timeouts;
    return *this;
}

Channel::Channel(Cycle latency, Cycle period)
    : latency_(latency), period_(period)
{
    FBFLY_ASSERT(latency >= 1, "channel latency must be >= 1");
    FBFLY_ASSERT(period >= 1, "channel period must be >= 1");
}

void
Channel::enableReliability(const LinkReliabilityConfig &cfg,
                           const LinkErrorRates &rates, Rng rng)
{
    FBFLY_ASSERT(!dead_, "enableReliability on a dead channel");
    FBFLY_ASSERT(flitsCarried_ == 0,
                 "enableReliability after traffic has flowed");
    FBFLY_ASSERT(rel_ == nullptr, "reliability enabled twice");
    FBFLY_ASSERT(cfg.windowFlits >= 1,
                 "retry window must hold at least one flit");
    FBFLY_ASSERT(cfg.retryTimeout >= 1 &&
                     cfg.maxTimeout >= cfg.retryTimeout,
                 "bad retry timeout configuration");
    rel_ = std::make_unique<Reliability>();
    rel_->cfg = cfg;
    rel_->rates = rates;
    rel_->rng = rng;
}

bool
Channel::canSendFlit(Cycle now) const
{
    if (dead_ || now < nextFree_)
        return false;
    if (rel_ != nullptr) {
        // The window must have room and no retransmission round may
        // be in progress (go-back-N resends strictly before new
        // flits, preserving sequence order on the wire).
        if (rel_->resendPos != kNoResend)
            return false;
        if (static_cast<int>(rel_->replay.size()) >=
            rel_->cfg.windowFlits)
            return false;
    }
    return true;
}

void
Channel::transmitAttempt(const Flit &f, Cycle now, bool is_retransmit)
{
    FBFLY_ASSERT(!dead_, "transmit on a dead channel");
    FBFLY_ASSERT(now >= lastFlitSend_,
                 "non-monotonic sendFlit: now=", now, " after ",
                 lastFlitSend_);
    FBFLY_ASSERT(now >= nextFree_,
                 "channel bandwidth violated: send at ", now,
                 " but busy until ", nextFree_,
                 " (check canSendFlit first)");
    lastFlitSend_ = now;
    nextFree_ = now + period_;
    ++flitsCarried_;

    FBFLY_TRACE(trace_,
                is_retransmit ? TraceEventType::kRetry
                              : TraceEventType::kLinkTraverse,
                now, traceTrack_, f);

    if (rel_ == nullptr) {
        flits_.emplace_back(now + latency_, f);
        if (sched_ != nullptr)
            sched_->wakeAt(downComp_, now + latency_);
        return;
    }

    Reliability &r = *rel_;
    ++r.stats.attempts;
    if (is_retransmit)
        ++r.stats.retransmits;

    bool erase = false;
    bool corrupt = false;
    if (r.rates.any()) {
        // Gilbert-Elliott burst chain: enter the bad state with
        // probability burstStart, apply (possibly amplified) rates,
        // leave with probability burstStop.
        if (!r.inBurst && r.rates.burstStart > 0.0 &&
            r.rng.nextBernoulli(r.rates.burstStart))
            r.inBurst = true;
        double pc = r.rates.corrupt;
        double pe = r.rates.erase;
        if (r.inBurst) {
            pc = std::min(1.0, pc * r.rates.burstFactor);
            pe = std::min(1.0, pe * r.rates.burstFactor);
        }
        const double u = r.rng.nextDouble();
        if (u < pe)
            erase = true;
        else if (u < pe + pc)
            corrupt = true;
        if (r.inBurst && r.rng.nextBernoulli(r.rates.burstStop))
            r.inBurst = false;
    }

    if (erase) {
        ++r.stats.eraseInjected;
        return; // lost on the wire; the replay buffer still holds it
    }
    Flit g = f;
    if (corrupt) {
        ++r.stats.corruptInjected;
        // Flip one random bit in a covered field; the receiver's
        // CRC-32C check detects any such flip.
        const std::uint64_t mask = std::uint64_t{1}
                                   << r.rng.nextBounded(64);
        switch (r.rng.nextBounded(5)) {
        case 0:
            g.id ^= mask;
            break;
        case 1:
            g.packet ^= mask;
            break;
        case 2:
            g.createTime ^= mask;
            break;
        case 3:
            g.linkSeq ^= mask;
            break;
        default:
            g.crc ^= static_cast<std::uint32_t>(mask) | 1u;
            break;
        }
    }
    flits_.emplace_back(now + latency_, g);
    if (sched_ != nullptr)
        sched_->wakeAt(downComp_, now + latency_);
}

void
Channel::sendFlit(const Flit &f, Cycle now)
{
    FBFLY_ASSERT(!dead_, "sendFlit on a dead channel");
    if (rel_ != nullptr) {
        FBFLY_ASSERT(rel_->resendPos == kNoResend &&
                         static_cast<int>(rel_->replay.size()) <
                             rel_->cfg.windowFlits,
                     "sendFlit past the retry window "
                     "(check canSendFlit first)");
        Flit g = f;
        g.linkSeq = rel_->nextSeq++;
        g.crc = flitCrc(g);
        if (rel_->replay.empty()) {
            // First unacked flit (re)arms the timeout.
            rel_->timeout = rel_->cfg.retryTimeout;
            rel_->deadline = now + rel_->timeout;
            if (sched_ != nullptr)
                sched_->wakeAt(upComp_, rel_->deadline);
        }
        rel_->replay.push_back(g);
        ++logicalInFlight_;
        if (g.vc >= 0) {
            if (static_cast<std::size_t>(g.vc) >= inFlightVc_.size())
                inFlightVc_.resize(g.vc + 1, 0);
            ++inFlightVc_[g.vc];
        }
        transmitAttempt(g, now, false);
        return;
    }
    ++logicalInFlight_;
    if (f.vc >= 0) {
        if (static_cast<std::size_t>(f.vc) >= inFlightVc_.size())
            inFlightVc_.resize(f.vc + 1, 0);
        ++inFlightVc_[f.vc];
    }
    transmitAttempt(f, now, false);
}

std::optional<Flit>
Channel::receiveFlit(Cycle now)
{
    FBFLY_ASSERT(now >= lastFlitRecv_,
                 "non-monotonic receiveFlit: now=", now, " after ",
                 lastFlitRecv_);
    lastFlitRecv_ = now;

    auto accept = [this](const Flit &f) {
        --logicalInFlight_;
        FBFLY_ASSERT(logicalInFlight_ >= 0,
                     "channel accounting underflow");
        if (f.vc >= 0 &&
            static_cast<std::size_t>(f.vc) < inFlightVc_.size())
            --inFlightVc_[f.vc];
    };

    if (rel_ == nullptr) {
        if (flits_.empty() || flits_.front().first > now)
            return std::nullopt;
        Flit f = flits_.front().second;
        flits_.pop_front();
        accept(f);
        return f;
    }

    Reliability &r = *rel_;
    while (!flits_.empty() && flits_.front().first <= now) {
        Flit f = flits_.front().second;
        flits_.pop_front();
        if (flitCrc(f) != f.crc) {
            // Corrupted arrival: discard and (once per gap episode)
            // nack the next expected sequence number so the
            // transmitter goes back without waiting for the timeout.
            ++r.stats.crcRejected;
            if (!r.nackPending) {
                r.nackPending = true;
                ++r.stats.nacksSent;
                pushAck({r.expectedSeq, true}, now);
                FBFLY_TRACE(trace_, TraceEventType::kNack, now,
                            traceTrack_, f,
                            saturateSeq(r.expectedSeq));
            }
            continue;
        }
        if (f.linkSeq < r.expectedSeq) {
            // Go-back-N retransmissions replay flits the receiver
            // already accepted; exactly-once delivery is preserved
            // by suppressing them here.
            ++r.stats.dupSuppressed;
            continue;
        }
        if (f.linkSeq > r.expectedSeq) {
            // Sequence gap: an earlier flit was erased.  Nack it.
            if (!r.nackPending) {
                r.nackPending = true;
                ++r.stats.nacksSent;
                pushAck({r.expectedSeq, true}, now);
                FBFLY_TRACE(trace_, TraceEventType::kNack, now,
                            traceTrack_, f,
                            saturateSeq(r.expectedSeq));
            }
            continue;
        }
        // In-order, uncorrupted: accept and cumulatively ack.
        r.expectedSeq = f.linkSeq + 1;
        r.nackPending = false;
        ++r.stats.acksSent;
        pushAck({r.expectedSeq, false}, now);
        accept(f);
        return f;
    }
    return std::nullopt;
}

void
Channel::pushAck(const Ack &a, Cycle now)
{
    if (dead_) {
        // The return lane of a failed link carries nothing (same as
        // credits): the transmitter is dead too.
        return;
    }
    rel_->acks.emplace_back(now + latency_, a);
    if (sched_ != nullptr)
        sched_->wakeAt(upComp_, now + latency_);
}

void
Channel::tick(Cycle now)
{
    if (rel_ == nullptr)
        return;
    tickTransmitter(now);
}

void
Channel::tickTransmitter(Cycle now)
{
    Reliability &r = *rel_;

    // 1. Drain the ack lane.
    while (!r.acks.empty() && r.acks.front().first <= now) {
        const Ack a = r.acks.front().second;
        r.acks.pop_front();
        if (a.nack) {
            // Honor a nack only when idle (a resend round already in
            // progress will cover it) and when it refers to a flit
            // still outstanding (stale nacks arrive after the window
            // has advanced past them).
            if (r.resendPos == kNoResend && a.seq >= r.baseSeq &&
                a.seq < r.nextSeq) {
                r.resendPos =
                    static_cast<std::size_t>(a.seq - r.baseSeq);
                r.timeout = r.cfg.retryTimeout;
                r.deadline = now + r.timeout;
                if (sched_ != nullptr)
                    sched_->wakeAt(upComp_, r.deadline);
            }
            continue;
        }
        // Cumulative ack: everything below a.seq has been accepted.
        bool progress = false;
        while (r.baseSeq < a.seq && !r.replay.empty()) {
            r.replay.pop_front();
            ++r.baseSeq;
            progress = true;
            if (r.resendPos != kNoResend && r.resendPos > 0)
                --r.resendPos;
        }
        if (r.resendPos != kNoResend &&
            r.resendPos >= r.replay.size())
            r.resendPos = kNoResend;
        if (progress) {
            // Forward progress resets the backoff.
            r.timeout = r.cfg.retryTimeout;
            r.deadline = now + r.timeout;
            if (sched_ != nullptr && !r.replay.empty())
                sched_->wakeAt(upComp_, r.deadline);
        }
    }

    // 2. Timeout: no ack progress for `timeout` cycles with flits
    //    outstanding starts a full go-back-N round with exponential
    //    backoff (capped), covering lost nacks and tail losses.
    if (!r.replay.empty() && r.resendPos == kNoResend &&
        now >= r.deadline) {
        r.resendPos = 0;
        ++r.stats.timeouts;
        r.timeout = std::min(r.timeout * 2, r.cfg.maxTimeout);
        r.deadline = now + r.timeout;
        if (sched_ != nullptr)
            sched_->wakeAt(upComp_, r.deadline);
    }

    // 3. Put one pending retransmission on the wire, respecting
    //    channel bandwidth (retransmissions compete with new flits
    //    for the same wire slots).
    if (r.resendPos != kNoResend && !dead_ && now >= nextFree_) {
        transmitAttempt(r.replay[r.resendPos], now, true);
        ++r.resendPos;
        if (r.resendPos >= r.replay.size())
            r.resendPos = kNoResend;
    }

    // A retransmission round still in progress (including one
    // stalled by a dead wire or bandwidth) must keep its owner
    // ticking until the round completes.
    if (r.resendPos != kNoResend && sched_ != nullptr)
        sched_->wakeAt(upComp_, now + 1);
}

void
Channel::sendCredit(VcId vc, Cycle now)
{
    if (dead_) {
        // The return lane of a failed link carries nothing; the
        // upstream transmitter is dead too, so the credit can never
        // be used.  Count the drop for accounting.
        ++creditsDropped_;
        return;
    }
    FBFLY_ASSERT(now >= lastCreditSend_,
                 "non-monotonic sendCredit: now=", now, " after ",
                 lastCreditSend_);
    lastCreditSend_ = now;
    credits_.emplace_back(now + latency_, vc);
    if (sched_ != nullptr)
        sched_->wakeAt(upComp_, now + latency_);
}

std::optional<VcId>
Channel::receiveCredit(Cycle now)
{
    FBFLY_ASSERT(now >= lastCreditRecv_,
                 "non-monotonic receiveCredit: now=", now, " after ",
                 lastCreditRecv_);
    lastCreditRecv_ = now;
    if (credits_.empty() || credits_.front().first > now)
        return std::nullopt;
    VcId vc = credits_.front().second;
    credits_.pop_front();
    return vc;
}

int
Channel::flitsInFlight() const
{
    return logicalInFlight_;
}

int
Channel::flitsInFlightOnVc(VcId vc) const
{
    if (vc < 0 || static_cast<std::size_t>(vc) >= inFlightVc_.size())
        return 0;
    return inFlightVc_[vc];
}

int
Channel::creditsInFlightOnVc(VcId vc) const
{
    int n = 0;
    for (std::size_t i = 0; i < credits_.size(); ++i)
        n += credits_[i].second == vc ? 1 : 0;
    return n;
}

const LinkStats &
Channel::linkStats() const
{
    static const LinkStats kNone{};
    return rel_ != nullptr ? rel_->stats : kNone;
}

int
Channel::replayOccupancy() const
{
    return rel_ != nullptr ? static_cast<int>(rel_->replay.size())
                           : 0;
}

void
Channel::kill()
{
    dead_ = true;
}

Channel::ReviveLoss
Channel::revive()
{
    FBFLY_ASSERT(dead_, "revive on a live channel");
    dead_ = false;
    ReviveLoss loss;
    if (rel_ == nullptr) {
        // A dead plain channel refused every new send, so nothing
        // was stranded: whatever is still on the wire keeps flying
        // and will be delivered (and credited) normally.
        return loss;
    }

    Reliability &r = *rel_;
    // Replay flits the receiver never accepted (seq >= expectedSeq)
    // are logically in flight and unrecoverable once both sides
    // reset; flits below expectedSeq were accepted downstream and
    // only their acks died with the link.
    for (std::size_t i = 0; i < r.replay.size(); ++i) {
        const Flit &f = r.replay[i];
        if (f.linkSeq < r.expectedSeq)
            continue;
        ++loss.flits;
        if (f.tail) {
            ++loss.packets;
            if (f.measured)
                ++loss.measuredPackets;
        }
    }
    // Clean go-back-N reset: both sides restart at sequence zero
    // with an empty window, no retransmission round, no pending
    // nack, fresh backoff and a good-state wire.  Cumulative
    // LinkStats counters survive (they describe the link's history).
    r.replay.clear();
    r.nextSeq = 0;
    r.baseSeq = 0;
    r.resendPos = kNoResend;
    r.timeout = 0;
    r.deadline = 0;
    r.expectedSeq = 0;
    r.nackPending = false;
    r.inBurst = false;
    r.acks.clear();
    // Stale wire contents carry pre-outage sequence numbers that
    // would confuse the reset receiver; flush them (every such flit
    // is part of the replay loss counted above).
    flits_.clear();
    credits_.clear();
    logicalInFlight_ = 0;
    inFlightVc_.assign(inFlightVc_.size(), 0);
    return loss;
}

} // namespace fbfly
