#include "network/channel.h"

#include "common/log.h"

namespace fbfly
{

Channel::Channel(Cycle latency, Cycle period)
    : latency_(latency), period_(period)
{
    FBFLY_ASSERT(latency >= 1, "channel latency must be >= 1");
    FBFLY_ASSERT(period >= 1, "channel period must be >= 1");
}

bool
Channel::canSendFlit(Cycle now) const
{
    return now >= nextFree_;
}

void
Channel::sendFlit(const Flit &f, Cycle now)
{
    FBFLY_ASSERT(canSendFlit(now), "channel bandwidth violated");
    nextFree_ = now + period_;
    ++flitsCarried_;
    flits_.emplace_back(now + latency_, f);
}

std::optional<Flit>
Channel::receiveFlit(Cycle now)
{
    if (flits_.empty() || flits_.front().first > now)
        return std::nullopt;
    Flit f = flits_.front().second;
    flits_.pop_front();
    return f;
}

void
Channel::sendCredit(VcId vc, Cycle now)
{
    credits_.emplace_back(now + latency_, vc);
}

std::optional<VcId>
Channel::receiveCredit(Cycle now)
{
    if (credits_.empty() || credits_.front().first > now)
        return std::nullopt;
    VcId vc = credits_.front().second;
    credits_.pop_front();
    return vc;
}

} // namespace fbfly
