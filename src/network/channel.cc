#include "network/channel.h"

#include "common/log.h"

namespace fbfly
{

Channel::Channel(Cycle latency, Cycle period)
    : latency_(latency), period_(period)
{
    FBFLY_ASSERT(latency >= 1, "channel latency must be >= 1");
    FBFLY_ASSERT(period >= 1, "channel period must be >= 1");
}

bool
Channel::canSendFlit(Cycle now) const
{
    return !dead_ && now >= nextFree_;
}

void
Channel::sendFlit(const Flit &f, Cycle now)
{
    FBFLY_ASSERT(!dead_, "sendFlit on a dead channel");
    FBFLY_ASSERT(now >= lastFlitSend_,
                 "non-monotonic sendFlit: now=", now, " after ",
                 lastFlitSend_);
    FBFLY_ASSERT(now >= nextFree_,
                 "channel bandwidth violated: send at ", now,
                 " but busy until ", nextFree_,
                 " (check canSendFlit first)");
    lastFlitSend_ = now;
    nextFree_ = now + period_;
    ++flitsCarried_;
    flits_.emplace_back(now + latency_, f);
}

std::optional<Flit>
Channel::receiveFlit(Cycle now)
{
    FBFLY_ASSERT(now >= lastFlitRecv_,
                 "non-monotonic receiveFlit: now=", now, " after ",
                 lastFlitRecv_);
    lastFlitRecv_ = now;
    if (flits_.empty() || flits_.front().first > now)
        return std::nullopt;
    Flit f = flits_.front().second;
    flits_.pop_front();
    return f;
}

void
Channel::sendCredit(VcId vc, Cycle now)
{
    if (dead_) {
        // The return lane of a failed link carries nothing; the
        // upstream transmitter is dead too, so the credit can never
        // be used.  Count the drop for accounting.
        ++creditsDropped_;
        return;
    }
    FBFLY_ASSERT(now >= lastCreditSend_,
                 "non-monotonic sendCredit: now=", now, " after ",
                 lastCreditSend_);
    lastCreditSend_ = now;
    credits_.emplace_back(now + latency_, vc);
}

std::optional<VcId>
Channel::receiveCredit(Cycle now)
{
    FBFLY_ASSERT(now >= lastCreditRecv_,
                 "non-monotonic receiveCredit: now=", now, " after ",
                 lastCreditRecv_);
    lastCreditRecv_ = now;
    if (credits_.empty() || credits_.front().first > now)
        return std::nullopt;
    VcId vc = credits_.front().second;
    credits_.pop_front();
    return vc;
}

int
Channel::flitsInFlightOnVc(VcId vc) const
{
    int n = 0;
    for (const auto &[cycle, f] : flits_)
        n += f.vc == vc ? 1 : 0;
    return n;
}

int
Channel::creditsInFlightOnVc(VcId vc) const
{
    int n = 0;
    for (const auto &[cycle, c] : credits_)
        n += c == vc ? 1 : 0;
    return n;
}

void
Channel::kill()
{
    dead_ = true;
}

} // namespace fbfly
