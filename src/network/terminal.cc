#include "network/terminal.h"

#include "common/log.h"
#include "network/flit.h"
#include "network/network.h"
#include "obs/trace.h"
#include "sim/delivery_oracle.h"

namespace fbfly
{

Terminal::Terminal(NodeId id, int num_vcs, int vc_depth, Rng rng,
                   Network *parent)
    : id_(id), numVcs_(num_vcs), rng_(rng), parent_(parent),
      credits_(num_vcs, vc_depth)
{
}

void
Terminal::enqueuePacket(Cycle create_time, NodeId dst, bool measured)
{
    queue_.push_back({create_time, dst, measured});
    ++parent_->stats().pendingPackets;
    if (measured)
        ++parent_->stats().measuredCreated;
    if (sched_ != nullptr)
        sched_->wakeNext(comp_);
}

void
Terminal::receive(Cycle now)
{
    if (toRouter_ != nullptr) {
        if (toRouter_->needsTick(now))
            toRouter_->tick(now);
        if (toRouter_->hasCreditArrival(now)) {
            while (auto vc = toRouter_->receiveCredit(now)) {
                FBFLY_ASSERT(*vc >= 0 && *vc < numVcs_,
                             "terminal credit VC range");
                ++credits_[*vc];
            }
        }
    }
    if (fromRouter_ == nullptr || !fromRouter_->hasFlitArrival(now))
        return;
    while (auto f = fromRouter_->receiveFlit(now)) {
        FBFLY_ASSERT(f->dst == id_, "flit for node ", f->dst,
                     " ejected at node ", id_);
        FBFLY_TRACE(trace_, TraceEventType::kEject, now, traceTrack_,
                    *f, f->vc);
        if (sink_ != nullptr) {
            ++sink_->flitsEjected;
            sink_->hopsEjected += static_cast<std::uint64_t>(f->hops);
            if (f->tail) {
                ++sink_->packetsEjected;
                if (f->measured)
                    sink_->measuredEjects.push_back(*f);
            }
            continue;
        }
        NetworkStats &st = parent_->stats();
        ++st.flitsEjected;
        st.hopsEjected += static_cast<std::uint64_t>(f->hops);
        if (f->tail) {
            ++st.packetsEjected;
            if (f->measured) {
                if (DeliveryOracle *oracle = parent_->oracle())
                    oracle->onEject(*f);
                ++st.measuredEjected;
                const auto lat =
                    static_cast<double>(now - f->createTime);
                st.packetLatency.add(lat);
                st.networkLatency.add(
                    static_cast<double>(now - f->injectTime));
                st.hops.add(f->hops);
                st.latencyHist.add(now - f->createTime);
            }
        }
    }
}

void
Terminal::inject(Cycle now)
{
    planInject(now);
    assignPlannedIds();
    executeInject(now);
}

void
Terminal::planInject(Cycle now)
{
    planStart_ = false;
    planSend_ = false;
    if (toRouter_ == nullptr)
        return;

    // Start a new packet if idle and the channel + some VC allow it.
    // A successful start implies the send below also succeeds (the
    // channel check is the same and the chosen VC has a credit), so
    // starting never wastes a drawn packet id.
    if (remainingFlits_ == 0) {
        if (queue_.empty() || !toRouter_->canSendFlit(now))
            return;
        VcId vc = kInvalid;
        for (int i = 0; i < numVcs_; ++i) {
            const int c = (lastVc_ + 1 + i) % numVcs_;
            if (credits_[c] > 0) {
                vc = c;
                break;
            }
        }
        if (vc == kInvalid)
            return;
        lastVc_ = vc;
        currentVc_ = vc;
        current_ = queue_.front();
        queue_.pop_front();
        if (sink_ != nullptr) {
            --sink_->pendingPacketsDelta;
            ++sink_->midPacketDelta;
        } else {
            --parent_->stats().pendingPackets;
            ++parent_->stats().midPacketTerminals;
        }
        if (current_.dst == kInvalid)
            current_.dst = parent_->drawDest(id_, rng_);
        remainingFlits_ = parent_->packetSize();
        flitIndex_ = 0;
        planStart_ = true;
    }

    // Continue the in-progress packet if flow control allows.
    if (!toRouter_->canSendFlit(now) || credits_[currentVc_] <= 0)
        return;
    planSend_ = true;
}

void
Terminal::assignPlannedIds()
{
    if (planStart_)
        currentPacket_ = parent_->nextPacketId();
    if (planSend_)
        plannedFlit_ = parent_->nextFlitId();
}

void
Terminal::executeInject(Cycle now)
{
    if (!planSend_)
        return;

    Flit f;
    f.id = plannedFlit_;
    f.packet = currentPacket_;
    f.src = id_;
    f.dst = current_.dst;
    f.head = flitIndex_ == 0;
    f.tail = remainingFlits_ == 1;
    f.packetSize = parent_->packetSize();
    f.createTime = current_.create;
    f.injectTime = now;
    f.measured = current_.measured;
    f.vc = currentVc_;

    --credits_[currentVc_];
    if (f.head && f.measured) {
        if (sink_ != nullptr)
            sink_->measuredInjects.push_back(f);
        else if (DeliveryOracle *oracle = parent_->oracle())
            oracle->onInject(f);
    }
    FBFLY_TRACE(trace_, TraceEventType::kInject, now, traceTrack_, f,
                currentVc_);
    toRouter_->sendFlit(f, now);
    if (sink_ != nullptr)
        ++sink_->flitsInjected;
    else
        ++parent_->stats().flitsInjected;

    ++flitIndex_;
    --remainingFlits_;
    if (remainingFlits_ == 0) {
        if (sink_ != nullptr)
            --sink_->midPacketDelta;
        else
            --parent_->stats().midPacketTerminals;
    }
}

} // namespace fbfly
