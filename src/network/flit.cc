#include "network/flit.h"

// Flit is a plain value type; this translation unit exists so the
// header has a home in the library and static checks (size growth)
// can live here.

static_assert(sizeof(fbfly::Flit) <= 96,
              "Flit grew unexpectedly; check hot-path memory use");
