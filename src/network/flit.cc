#include "network/flit.h"

#include <array>
#include <cstddef>

// Flit is a plain value type; this translation unit holds the static
// size check and the link-layer CRC used by reliable channels.

static_assert(sizeof(fbfly::Flit) <= 96,
              "Flit grew unexpectedly; check hot-path memory use");

namespace fbfly
{

namespace
{

/** Table-driven CRC-32C (Castagnoli), reflected polynomial. */
constexpr std::uint32_t kCrc32cPoly = 0x82f63b78u;

constexpr std::array<std::uint32_t, 256>
makeCrc32cTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (kCrc32cPoly ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

constexpr auto kCrc32cTable = makeCrc32cTable();

std::uint32_t
crc32c(const unsigned char *data, std::size_t len)
{
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        crc = kCrc32cTable[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

/** Serializer: appends values little-endian into a flat buffer. */
struct ByteSink
{
    unsigned char buf[96];
    std::size_t len = 0;

    void
    put64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf[len++] = static_cast<unsigned char>(v >> (8 * i));
    }

    void
    put32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf[len++] = static_cast<unsigned char>(v >> (8 * i));
    }

    void put8(std::uint8_t v) { buf[len++] = v; }
};

} // namespace

std::uint32_t
flitCrc(const Flit &f)
{
    ByteSink s;
    s.put64(f.id);
    s.put64(f.packet);
    s.put32(static_cast<std::uint32_t>(f.src));
    s.put32(static_cast<std::uint32_t>(f.dst));
    s.put8(f.head ? 1 : 0);
    s.put8(f.tail ? 1 : 0);
    s.put32(static_cast<std::uint32_t>(f.packetSize));
    s.put64(f.createTime);
    s.put64(f.injectTime);
    s.put32(static_cast<std::uint32_t>(f.hops));
    s.put8(f.measured ? 1 : 0);
    s.put8(static_cast<std::uint8_t>(f.phase));
    s.put8(static_cast<std::uint8_t>(f.routeMode));
    s.put8(static_cast<std::uint8_t>(f.ascendDim));
    s.put8(static_cast<std::uint8_t>(f.ancestorDim));
    s.put32(static_cast<std::uint32_t>(f.intermediate));
    s.put8(static_cast<std::uint8_t>(f.misroutes));
    s.put8(static_cast<std::uint8_t>(f.routeAlgo));
    s.put32(static_cast<std::uint32_t>(f.vc));
    s.put8(f.routed ? 1 : 0);
    s.put32(static_cast<std::uint32_t>(f.outPort));
    s.put32(static_cast<std::uint32_t>(f.outVc));
    s.put64(f.linkSeq);
    return crc32c(s.buf, s.len);
}

} // namespace fbfly
