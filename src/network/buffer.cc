#include "network/buffer.h"

#include "common/log.h"

namespace fbfly
{

void
VcBuffer::push(const Flit &f)
{
    FBFLY_ASSERT(!full(), "push into full VC buffer (flow-control bug)");
    q_.push_back(f);
}

const Flit &
VcBuffer::front() const
{
    FBFLY_ASSERT(!empty(), "front of empty VC buffer");
    return q_.front();
}

Flit &
VcBuffer::front()
{
    FBFLY_ASSERT(!empty(), "front of empty VC buffer");
    return q_.front();
}

Flit
VcBuffer::pop()
{
    FBFLY_ASSERT(!empty(), "pop of empty VC buffer");
    Flit f = q_.front();
    q_.pop_front();
    return f;
}

Flit
VcBuffer::eraseAt(int i)
{
    FBFLY_ASSERT(i >= 0 && i < size(), "eraseAt out of range");
    return q_.erase_at(static_cast<std::size_t>(i));
}

} // namespace fbfly
