/**
 * @file
 * ActiveSet — the simulation kernel's runnable-component scheduler.
 *
 * The per-cycle loop used to tick every router and terminal every
 * cycle; at low offered load almost all of that work is polling idle
 * components.  An ActiveSet tracks which components have (or may
 * have) work in the upcoming cycle, so Network::step() visits only
 * those:
 *
 *  - components are woken for the *next* cycle when they gain work
 *    now (a packet is queued, a flit/credit/ack is put on a wire
 *    that will deliver it next cycle, a component keeps buffered
 *    work across a cycle boundary);
 *  - timed events further out (multi-cycle channel time of flight,
 *    go-back-N retry deadlines) go through a wake-at-cycle min-heap
 *    and surface exactly at their target cycle.
 *
 * Correctness contract: a wake must be delivered *at or after* the
 * cycle its work becomes actionable, and every piece of pending work
 * must have a wake that fires exactly when it does — spurious (too
 * frequent) wakes only cost time, but an early wake that is consumed
 * by a no-op step loses the real one.  wakeAt() therefore routes
 * wakes for the immediately-next cycle into the bitmask and keeps
 * later ones in the heap, and beginCycle() serves strictly
 * consecutive cycles.
 *
 * Iteration order over active components is ascending component
 * index — the same order as the pre-rewrite full loops — so RNG
 * streams, arbitration and traces stay bit-identical (verified by
 * the golden-trace and idle-equivalence fixtures).
 *
 * Sharded stepping (Network cfg.shards > 1, DESIGN.md "Sharded
 * step engine"): phase workers must not mutate the shared bitmask or
 * heap concurrently, so each shard stages its wakes into a private
 * WakeStage installed thread-locally (stageWakesTo).  Next-cycle
 * wakes land in a per-shard mask (merged with a commutative OR at
 * commit); later timed wakes are recorded in call order and replayed
 * through the real wakeAt() serially, in ascending-shard segment
 * order — the exact order the sequential loop would have issued
 * them, so the heap contents, push order and the per-component
 * duplicate suppression (lastAt_) stay bit-identical.
 */

#ifndef FBFLY_NETWORK_ACTIVE_SET_H
#define FBFLY_NETWORK_ACTIVE_SET_H

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace fbfly
{

/**
 * Two-generation bitmask of runnable components plus a wake-at-cycle
 * queue for timed events.  Component ids are dense [0, n): the
 * Network maps routers to [0, R) and terminals to [R, R + N).
 */
class ActiveSet
{
  public:
    /**
     * Per-shard wake staging buffer for phased (parallel) stepping.
     * While installed via stageWakesTo(), wakeNext()/wakeAt() record
     * into it instead of the shared state:
     *  - wakes due at or before `horizon` (the next cycle) set a bit
     *    in `mask` (order-insensitive: OR-merged at commit);
     *  - later wakes append to `timers` in call order, partitioned
     *    into phase segments by mark(); commit replays each segment
     *    through the real wakeAt() in ascending-shard order.
     */
    struct WakeStage
    {
        std::vector<std::uint64_t> mask;
        /** (component, due cycle) in call order. */
        std::vector<std::pair<std::uint32_t, Cycle>> timers;
        /** Segment end offsets into `timers` (one per mark()). */
        std::vector<std::size_t> seg;
        /** Wakes due at or before this cycle go into `mask`. */
        Cycle horizon = 0;

        void reset(std::size_t words, Cycle horizon_cycle)
        {
            mask.assign(words, 0);
            timers.clear();
            seg.clear();
            horizon = horizon_cycle;
        }

        /** Close the current phase segment. */
        void mark() { seg.push_back(timers.size()); }
    };

    /** Install @p stage as this thread's wake redirect (nullptr to
     *  restore direct operation).  Thread-local: phase workers of a
     *  sharded step each stage into their own shard's buffer. */
    static void stageWakesTo(WakeStage *stage) { tlsStage_ = stage; }

    /** RAII installer for stageWakesTo(). */
    class StageGuard
    {
      public:
        explicit StageGuard(WakeStage *stage) { stageWakesTo(stage); }
        ~StageGuard() { stageWakesTo(nullptr); }
        StageGuard(const StageGuard &) = delete;
        StageGuard &operator=(const StageGuard &) = delete;
    };

    /** Size the set for @p n components and wake them all for the
     *  first cycle (cycle 0 must step everything once so initial
     *  state — queued packets, pre-applied faults — is observed). */
    void init(std::size_t n)
    {
        n_ = n;
        const std::size_t words = (n + 63) / 64;
        cur_.assign(words, 0);
        next_.assign(words, 0);
        lastAt_.assign(n, kNeverQueued);
        timers_.clear();
        nextCycle_ = 0;
        wakeAllNext();
    }

    std::size_t size() const { return n_; }

    /** Mark component @p c runnable in the next beginCycle(). */
    void wakeNext(std::uint32_t c)
    {
        if (WakeStage *s = tlsStage_; s != nullptr) {
            s->mask[c >> 6] |= std::uint64_t{1} << (c & 63);
            return;
        }
        next_[c >> 6] |= std::uint64_t{1} << (c & 63);
    }

    /** Mark every component runnable in the next beginCycle(). */
    void wakeAllNext()
    {
        if (n_ == 0)
            return;
        std::fill(next_.begin(), next_.end(), ~std::uint64_t{0});
        // Keep bits past n_ clear so iteration never visits them.
        const std::uint32_t tail = static_cast<std::uint32_t>(n_) & 63;
        if (tail != 0)
            next_.back() &= (std::uint64_t{1} << tail) - 1;
    }

    /**
     * Wake component @p c for cycle @p at (>= the next cycle this
     * set will serve).  Wakes for the immediately-next cycle bypass
     * the heap entirely — the common case for latency-1 channels.
     */
    void wakeAt(std::uint32_t c, Cycle at)
    {
        if (WakeStage *s = tlsStage_; s != nullptr) {
            if (at <= s->horizon)
                s->mask[c >> 6] |= std::uint64_t{1} << (c & 63);
            else
                s->timers.emplace_back(c, at);
            return;
        }
        if (at <= nextCycle_) {
            wakeNext(c);
            return;
        }
        if (lastAt_[c] == at)
            return; // identical timer already queued
        lastAt_[c] = at;
        timers_.emplace_back(at, c);
        std::push_heap(timers_.begin(), timers_.end(),
                       std::greater<>{});
    }

    /**
     * Start cycle @p t: the wakes accumulated for it become the
     * current set, and every timer due by @p t is folded in.  Cycles
     * must be served consecutively (the caller's step loop advances
     * one cycle at a time).
     *
     * @return true when any component is runnable this cycle.
     */
    bool beginCycle(Cycle t)
    {
        FBFLY_ASSERT(t == nextCycle_,
                     "ActiveSet cycles must be consecutive: begin ",
                     t, " but expected ", nextCycle_);
        cur_.swap(next_);
        std::fill(next_.begin(), next_.end(), 0);
        while (!timers_.empty() && timers_.front().first <= t) {
            const std::uint32_t c = timers_.front().second;
            std::pop_heap(timers_.begin(), timers_.end(),
                          std::greater<>{});
            timers_.pop_back();
            if (lastAt_[c] <= t)
                lastAt_[c] = kNeverQueued;
            cur_[c >> 6] |= std::uint64_t{1} << (c & 63);
        }
        nextCycle_ = t + 1;
        for (const std::uint64_t w : cur_)
            if (w != 0)
                return true;
        return false;
    }

    /**
     * Visit every active component with id in [@p lo, @p hi), in
     * ascending id order.  Waking components from inside the visitor
     * affects only future cycles (wakes land in the next
     * generation / the heap), never the current iteration.
     */
    template <typename F>
    void forEachIn(std::uint32_t lo, std::uint32_t hi, F &&f) const
    {
        const std::size_t wlo = lo >> 6;
        const std::size_t whi = (static_cast<std::size_t>(hi) + 63)
                                >> 6;
        for (std::size_t w = wlo; w < whi && w < cur_.size(); ++w) {
            std::uint64_t bits = cur_[w];
            if (w == wlo && (lo & 63) != 0)
                bits &= ~std::uint64_t{0} << (lo & 63);
            while (bits != 0) {
                const int b = std::countr_zero(bits);
                bits &= bits - 1;
                const std::uint32_t c =
                    static_cast<std::uint32_t>((w << 6) + b);
                if (c >= hi)
                    return;
                f(c);
            }
        }
    }

    // ------------------------------------------------------------------
    // Sharded-step commit (called serially, with no stage installed).

    /** Words in the next-generation mask (WakeStage sizing). */
    std::size_t maskWords() const { return next_.size(); }

    /** OR a staged next-cycle mask into the shared next generation.
     *  Commutative: shard merge order does not matter. */
    void mergeStagedMask(const WakeStage &s)
    {
        FBFLY_ASSERT(s.mask.size() == next_.size(),
                     "staged wake mask width mismatch");
        for (std::size_t w = 0; w < next_.size(); ++w)
            next_[w] |= s.mask[w];
    }

    /** Replay phase segment @p seg_index of a staged timer list
     *  through the real wakeAt() (call with ascending shards per
     *  segment to reproduce the sequential issue order). */
    void replayStagedTimers(const WakeStage &s, std::size_t seg_index)
    {
        FBFLY_ASSERT(seg_index < s.seg.size(),
                     "staged timer segment out of range");
        const std::size_t lo =
            seg_index == 0 ? 0 : s.seg[seg_index - 1];
        const std::size_t hi = s.seg[seg_index];
        for (std::size_t i = lo; i < hi; ++i)
            wakeAt(s.timers[i].first, s.timers[i].second);
    }

    // ------------------------------------------------------------------
    // Introspection (liveness classifier, wake-contract verifier,
    // stall dumps).  None of these mutate scheduling state.

    /** The cycle the next beginCycle() will serve. */
    Cycle nextCycle() const { return nextCycle_; }

    /** Was component @p c runnable in the most recent beginCycle()? */
    bool activeNow(std::uint32_t c) const
    {
        return (cur_[c >> 6] >> (c & 63)) & 1;
    }

    /** Is component @p c already woken for the next cycle? */
    bool queuedNext(std::uint32_t c) const
    {
        return (next_[c >> 6] >> (c & 63)) & 1;
    }

    /** Does component @p c hold any not-yet-due heap timer?  Linear
     *  in the heap size — diagnosis-path only, not the hot path. */
    bool timerPending(std::uint32_t c) const
    {
        for (const auto &[at, comp] : timers_)
            if (comp == c)
                return true;
        return false;
    }

    /** Any wake (next-cycle bit or heap timer) pending for @p c? */
    bool anyWakePending(std::uint32_t c) const
    {
        return queuedNext(c) || timerPending(c);
    }

    /** Number of queued heap timers (duplicates included). */
    std::size_t timerCount() const { return timers_.size(); }

    /** Earliest queued timer deadline, or kNeverQueued when none. */
    Cycle nextTimerDeadline() const
    {
        return timers_.empty() ? kNeverQueued : timers_.front().first;
    }

    /** Visit every component woken for the next cycle, ascending. */
    template <typename F>
    void forEachQueuedNext(F &&f) const
    {
        for (std::size_t w = 0; w < next_.size(); ++w) {
            std::uint64_t bits = next_[w];
            while (bits != 0) {
                const int b = std::countr_zero(bits);
                bits &= bits - 1;
                f(static_cast<std::uint32_t>((w << 6) + b));
            }
        }
    }

    /**
     * Remove component @p c from the *current* cycle's runnable set.
     * Debug/test hook (Network::debugSuppressComponent) used to
     * inject a missed wake: the component's work is stranded exactly
     * as a lost wake would strand it, which the liveness classifier
     * must then diagnose as a kernel bug.
     */
    void deactivate(std::uint32_t c)
    {
        cur_[c >> 6] &= ~(std::uint64_t{1} << (c & 63));
    }

    /** Sentinel deadline: "no timer queued". */
    static constexpr Cycle kNeverQueued = ~Cycle{0};

  private:
    /** Per-thread wake redirect for phased stepping (null when the
     *  thread writes the shared state directly). */
    static inline thread_local WakeStage *tlsStage_ = nullptr;

    std::vector<std::uint64_t> cur_;
    std::vector<std::uint64_t> next_;
    /** Last cycle queued in the heap per component (duplicate
     *  suppression for repeated same-deadline wakes). */
    std::vector<Cycle> lastAt_;
    /** Min-heap by (deadline, component) over a flat vector (std
     *  heap algorithms) so diagnosis code can enumerate pending
     *  timers; pop order is identical to the former priority_queue. */
    std::vector<std::pair<Cycle, std::uint32_t>> timers_;
    /** The cycle the next beginCycle() will serve. */
    Cycle nextCycle_ = 0;
    std::size_t n_ = 0;
};

} // namespace fbfly

#endif // FBFLY_NETWORK_ACTIVE_SET_H
