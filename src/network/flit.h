/**
 * @file
 * Flits — the unit of flow control.
 *
 * Packets are decomposed into flits at injection.  The head flit
 * carries all routing state; body/tail flits follow the head's route
 * (wormhole flow control).  The paper's evaluation uses single-flit
 * packets (head == tail), but the model supports arbitrary sizes.
 */

#ifndef FBFLY_NETWORK_FLIT_H
#define FBFLY_NETWORK_FLIT_H

#include <cstdint>

#include "common/types.h"

namespace fbfly
{

/** Per-packet routing mode for the UGAL / CLOS AD decision. */
enum RouteMode : std::int8_t
{
    /** Minimal-vs-nonminimal choice not yet made (at the source). */
    kModeUndecided = 0,
    /** Packet committed to a minimal route. */
    kModeMinimal = 1,
    /** Packet committed to a non-minimal (load-balancing) route. */
    kModeNonminimal = 2,
};

/**
 * One flit, copied by value through buffers and channels.
 *
 * Routing scratch state (phase / intermediate / ascendDim) is owned by
 * the head flit and mutated by routing algorithms as the packet makes
 * progress; see src/routing/.
 */
struct Flit
{
    FlitId id = 0;
    PacketId packet = 0;
    NodeId src = kInvalid;
    NodeId dst = kInvalid;

    bool head = false;
    bool tail = false;
    /** Flits in the packet (valid on the head flit). */
    int packetSize = 1;

    /** Cycle the packet was created (entered the source queue). */
    Cycle createTime = 0;
    /** Cycle the flit entered the network (left the source queue). */
    Cycle injectTime = 0;
    /** Inter-router + terminal channel traversals so far. */
    int hops = 0;
    /** Packet belongs to the measurement sample (paper Section 3.2). */
    bool measured = false;

    /**
     * @name Routing scratch (head flits only)
     * @{
     */
    /** 0 = toward the intermediate, 1 = toward the destination. */
    std::int8_t phase = 0;
    /** UGAL / CLOS AD minimal-vs-nonminimal commitment. */
    std::int8_t routeMode = kModeUndecided;
    /** Next dimension to process in an ascending phase (CLOS AD). */
    std::int8_t ascendDim = 1;
    /** Highest differing dimension at injection (CLOS AD ancestors). */
    std::int8_t ancestorDim = 0;
    /** Intermediate router for VAL/UGAL (kInvalid when unused). */
    std::int32_t intermediate = kInvalid;
    /** Non-minimal escape hops taken around failed channels; bounded
     *  by the routing algorithm's misroute budget, after which the
     *  packet is dropped as unreachable. */
    std::int8_t misroutes = 0;
    /** Algorithm a SwitchableRouting pinned this packet to at its
     *  first routing decision (-1: unpinned).  Pinning keeps every
     *  packet on one coherent algorithm even when the online adaptor
     *  switches the network-wide policy mid-flight. */
    std::int8_t routeAlgo = -1;
    /** @} */

    /** Virtual channel currently occupied (set when buffered). */
    VcId vc = kInvalid;

    /**
     * @name Per-hop route (bypass/speedup mode)
     * In single-flit (bypass) mode the route decision is stored on
     * the flit itself when it enters an input buffer, so the switch
     * can grant any buffered flit whose output is free — the
     * "sufficient switch speedup" idealization.  Reset on every hop.
     * @{
     */
    bool routed = false;
    PortId outPort = kInvalid;
    VcId outVc = kInvalid;
    /** @} */

    /**
     * @name Link-layer reliability (transient-error protection)
     * Set by a reliable Channel on transmission; meaningless (and
     * ignored) elsewhere.  `crc` covers every other field of the flit
     * so that any single- or multi-bit corruption on the wire is
     * detected at the receiver; `linkSeq` is the per-channel go-back-N
     * sequence number used for ack/nack, retransmission and duplicate
     * suppression.  See docs/FAULTS.md ("Transient errors").
     * @{
     */
    std::uint32_t crc = 0;
    std::uint64_t linkSeq = 0;
    /** @} */
};

/**
 * CRC-32C (Castagnoli) over every field of @p f except `crc` itself.
 *
 * The flit is serialized field by field into a fixed little-endian
 * byte layout before hashing, so the checksum is independent of
 * struct padding and host endianness.
 */
std::uint32_t flitCrc(const Flit &f);

} // namespace fbfly

#endif // FBFLY_NETWORK_FLIT_H
