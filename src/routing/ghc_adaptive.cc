#include "routing/ghc_adaptive.h"

#include "common/log.h"
#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

GhcAdaptive::GhcAdaptive(const GeneralizedHypercube &topo)
    : topo_(topo)
{
}

RouteDecision
GhcAdaptive::route(Router &router, Flit &flit)
{
    const RouterId r = router.id();
    const RouterId dst = flit.dst; // one terminal per router

    PortId best = kInvalid;
    int best_q = 0;
    int remaining = 0;
    int ties = 0;
    for (int d = 0; d < topo_.numDims(); ++d) {
        const int want = topo_.routerDigit(dst, d);
        if (topo_.routerDigit(r, d) == want)
            continue;
        ++remaining;
        const PortId p = topo_.portToward(r, d, want);
        const int q = router.estimatedQueue(p);
        if (best == kInvalid || q < best_q) {
            best = p;
            best_q = q;
            ties = 1;
        } else if (q == best_q) {
            ++ties;
            if (router.rng().nextBounded(ties) == 0)
                best = p;
        }
    }
    if (best == kInvalid)
        return {0, 0}; // terminal port
    // Hops-remaining VC indexing keeps the adaptive order
    // deadlock-free.
    return {best, remaining - 1};
}

} // namespace fbfly
