#include "routing/ghc_adaptive.h"

#include <algorithm>

#include "common/log.h"
#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

GhcAdaptive::GhcAdaptive(const GeneralizedHypercube &topo)
    : topo_(topo)
{
}

RouteDecision
GhcAdaptive::route(Router &router, Flit &flit)
{
    const RouterId r = router.id();
    const RouterId dst = flit.dst; // one terminal per router

    PortId best = kInvalid;
    int best_q = 0;
    int remaining = 0;
    int ties = 0;
    for (int d = 0; d < topo_.numDims(); ++d) {
        const int want = topo_.routerDigit(dst, d);
        if (topo_.routerDigit(r, d) == want)
            continue;
        ++remaining;
        const PortId p = topo_.portToward(r, d, want);
        if (!router.outputAlive(p))
            continue; // failed channel: masked from the candidates
        const int q = router.estimatedQueue(p);
        if (best == kInvalid || q < best_q) {
            best = p;
            best_q = q;
            ties = 1;
        } else if (q == best_q) {
            ++ties;
            if (router.rng().nextBounded(ties) == 0)
                best = p;
        }
    }
    if (remaining == 0)
        return {0, 0}; // terminal port
    if (best != kInvalid) {
        // Hops-remaining VC indexing keeps the adaptive order
        // deadlock-free.
        return {best, remaining - 1};
    }

    // Every productive channel has failed: budgeted non-minimal
    // escape, as in FbflyRouting::escapeHop.  Pass 1 detours within
    // a differing dimension (hop count preserved); pass 2 steps
    // sideways in a correct dimension (one extra hop).  VCs stay
    // clamped to the hops-remaining set; monotonicity no longer
    // holds, so faulty runs rely on the watchdog (docs/FAULTS.md).
    if (flit.misroutes >= 4 * topo_.numDims() + 8)
        return RouteDecision::dropped();
    PortId pick = kInvalid;
    bool pickDiffering = false;
    int count = 0;
    for (const bool differing : {true, false}) {
        for (int d = 0; d < topo_.numDims(); ++d) {
            const int own = topo_.routerDigit(r, d);
            const int want = topo_.routerDigit(dst, d);
            if ((own != want) != differing)
                continue;
            for (int v = 0; v < topo_.radixOf(d); ++v) {
                if (v == own || (differing && v == want))
                    continue;
                const PortId p = topo_.portToward(r, d, v);
                if (!router.outputAlive(p))
                    continue;
                ++count;
                if (router.rng().nextBounded(count) == 0) {
                    pick = p;
                    pickDiffering = differing;
                }
            }
        }
        if (pick != kInvalid)
            break;
    }
    if (pick == kInvalid)
        return RouteDecision::dropped(); // no alive channel at all
    ++flit.misroutes;
    const int after = pickDiffering ? remaining : remaining + 1;
    return {pick, std::min(after, topo_.numDims()) - 1};
}

} // namespace fbfly
