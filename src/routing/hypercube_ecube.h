/**
 * @file
 * E-cube (dimension-order) routing on the binary hypercube — the
 * hypercube row of the paper's Table 1.
 *
 * Differing address bits are corrected lowest-first; the strictly
 * increasing dimension order makes one VC deadlock-free.
 */

#ifndef FBFLY_ROUTING_HYPERCUBE_ECUBE_H
#define FBFLY_ROUTING_HYPERCUBE_ECUBE_H

#include "routing/routing.h"
#include "topology/hypercube.h"

namespace fbfly
{

/**
 * Deterministic e-cube hypercube routing.
 */
class HypercubeEcube final : public RoutingAlgorithm
{
  public:
    explicit HypercubeEcube(const Hypercube &topo);

    std::string name() const override { return "e-cube"; }
    int numVcs() const override { return 1; }
    bool preservesFlowOrder() const override { return true; }
    RouteDecision route(Router &router, Flit &flit) override;

  private:
    const Hypercube &topo_;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_HYPERCUBE_ECUBE_H
