/**
 * @file
 * MIN AD — minimal adaptive routing (paper Section 3.1).
 *
 * At each hop the productive channel with the shortest estimated
 * queue is chosen.  n' virtual channels indexed by hops remaining
 * prevent deadlock.  Uses a greedy routing-decision allocator.
 */

#ifndef FBFLY_ROUTING_MIN_ADAPTIVE_H
#define FBFLY_ROUTING_MIN_ADAPTIVE_H

#include "routing/fbfly_base.h"

namespace fbfly
{

/**
 * Minimal adaptive routing (MIN AD).
 */
class MinAdaptive final : public FbflyRouting
{
  public:
    explicit MinAdaptive(const FlattenedButterfly &topo);

    std::string name() const override { return "MIN AD"; }
    int numVcs() const override { return topo_.numDims(); }
    RouteDecision route(Router &router, Flit &flit) override;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_MIN_ADAPTIVE_H
