#include "routing/switchable.h"

#include "common/log.h"
#include "network/flit.h"

namespace fbfly
{

const char *
toString(RouteAlgoId id)
{
    switch (id) {
    case RouteAlgoId::kMinAdaptive:
        return "MIN AD";
    case RouteAlgoId::kUgal:
        return "UGAL";
    case RouteAlgoId::kValiant:
        return "VAL";
    }
    return "?";
}

SwitchableRouting::SwitchableRouting(const FlattenedButterfly &topo,
                                     RouteAlgoId initial)
    : min_(topo), ugal_(topo, /*sequential_alloc=*/false), val_(topo),
      current_(initial)
{
}

RoutingAlgorithm &
SwitchableRouting::impl(RouteAlgoId id)
{
    switch (id) {
    case RouteAlgoId::kMinAdaptive:
        return min_;
    case RouteAlgoId::kUgal:
        return ugal_;
    case RouteAlgoId::kValiant:
        return val_;
    }
    FBFLY_ASSERT(false, "invalid RouteAlgoId ",
                 static_cast<int>(id));
    return min_;
}

RouteDecision
SwitchableRouting::route(Router &router, Flit &flit)
{
    if (flit.routeAlgo < 0) {
        // First decision for this packet: pin it to the policy in
        // force now, so a later switch cannot mix two algorithms'
        // scratch-state machines within one route.
        flit.routeAlgo = static_cast<std::int8_t>(current_);
        ++pinned_[static_cast<std::size_t>(current_)];
    }
    FBFLY_ASSERT(flit.routeAlgo >= 0 && flit.routeAlgo < 3,
                 "corrupt routeAlgo pin ",
                 static_cast<int>(flit.routeAlgo));
    return impl(static_cast<RouteAlgoId>(flit.routeAlgo))
        .route(router, flit);
}

void
SwitchableRouting::select(RouteAlgoId id)
{
    if (id == current_)
        return;
    current_ = id;
    ++switches_;
}

} // namespace fbfly
