#include "routing/switchable.h"

#include "common/log.h"
#include "network/flit.h"

namespace fbfly
{

const char *
toString(RouteAlgoId id)
{
    switch (id) {
    case RouteAlgoId::kMinAdaptive:
        return "MIN AD";
    case RouteAlgoId::kUgal:
        return "UGAL";
    case RouteAlgoId::kValiant:
        return "VAL";
    }
    return "?";
}

SwitchableRouting::SwitchableRouting(const FlattenedButterfly &topo,
                                     RouteAlgoId initial)
    : min_(topo), ugal_(topo, /*sequential_alloc=*/false), val_(topo),
      current_(initial)
{
}

RouteDecision
SwitchableRouting::route(Router &router, Flit &flit)
{
    if (flit.routeAlgo < 0) {
        // First decision for this packet: pin it to the policy in
        // force now, so a later switch cannot mix two algorithms'
        // scratch-state machines within one route.
        flit.routeAlgo = static_cast<std::int8_t>(current_);
        pinned_[static_cast<std::size_t>(current_)].fetch_add(
            1, std::memory_order_relaxed);
    }
    // Direct member dispatch on the per-flit hot path: the members
    // are final classes, so each call devirtualizes (the former
    // RoutingAlgorithm& indirection forced a vtable load per flit).
    switch (static_cast<RouteAlgoId>(flit.routeAlgo)) {
    case RouteAlgoId::kMinAdaptive:
        return min_.route(router, flit);
    case RouteAlgoId::kUgal:
        return ugal_.route(router, flit);
    case RouteAlgoId::kValiant:
        return val_.route(router, flit);
    }
    FBFLY_ASSERT(false, "corrupt routeAlgo pin ",
                 static_cast<int>(flit.routeAlgo));
    return {};
}

void
SwitchableRouting::select(RouteAlgoId id)
{
    if (id == current_)
        return;
    current_ = id;
    ++switches_;
}

} // namespace fbfly
