#include "routing/dragonfly_routing.h"

#include <algorithm>

#include "common/log.h"
#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

RouterId
DragonflyRouting::dstRouter(const Flit &flit) const
{
    return topo_.injectionRouter(flit.dst);
}

RouteDecision
DragonflyRouting::eject(const Flit &flit) const
{
    return {topo_.ejectionPort(flit.dst), 0};
}

PortId
DragonflyRouting::minimalPort(RouterId cur, RouterId target) const
{
    FBFLY_ASSERT(cur != target, "minimalPort at the target");
    const int gs = topo_.groupOf(cur);
    const int gd = topo_.groupOf(target);
    if (gs == gd)
        return topo_.localPort(cur, topo_.localOf(target));
    const RouterId gw = topo_.globalRouter(gs, gd);
    if (cur == gw)
        return topo_.globalPort(gs, gd);
    return topo_.localPort(cur, topo_.localOf(gw));
}

VcId
DragonflyRouting::dateVc(const Flit &flit) const
{
    return std::min(flit.hops, numVcs() - 1);
}

RouteDecision
DragonflyRouting::escapeHop(Router &router, Flit &flit) const
{
    // Every productive channel has failed: budgeted random escape on
    // any alive inter-router port, VC date clamped to the top VC
    // (monotonicity no longer holds; the watchdog backs faulty runs).
    if (flit.misroutes >= 4 * 3 + 8)
        return RouteDecision::dropped();
    PortId pick = kInvalid;
    int count = 0;
    for (PortId p = topo_.p(); p < topo_.radix(); ++p) {
        if (!router.outputAlive(p))
            continue;
        ++count;
        if (router.rng().nextBounded(count) == 0)
            pick = p;
    }
    if (pick == kInvalid)
        return RouteDecision::dropped(); // no alive channel at all
    ++flit.misroutes;
    return {pick, dateVc(flit)};
}

RouteDecision
DragonflyMinimal::route(Router &router, Flit &flit)
{
    const RouterId cur = router.id();
    const RouterId dst = dstRouter(flit);
    if (cur == dst)
        return eject(flit);
    const PortId p = minimalPort(cur, dst);
    if (router.outputAlive(p))
        return {p, dateVc(flit)};
    return escapeHop(router, flit);
}

RouteDecision
DragonflyUgal::route(Router &router, Flit &flit)
{
    const RouterId cur = router.id();
    const RouterId dst = dstRouter(flit);
    if (cur == dst)
        return eject(flit);

    if (flit.routeMode == kModeUndecided) {
        // The minimal-vs-nonminimal choice, made once at the source
        // router: minimize estimated delay = (queue + 1) x hops,
        // like the flattened-butterfly UGAL.
        const int gs = topo_.groupOf(cur);
        const int gd = topo_.groupOf(dst);
        if (gs == gd) {
            flit.routeMode = kModeMinimal;
        } else {
            constexpr int kDeadQueue = 1 << 20;

            const int h_min = topo_.minimalHops(cur, dst);
            const PortId pm = minimalPort(cur, dst);
            const int q_min = router.outputAlive(pm)
                                  ? router.estimatedQueue(pm)
                                  : kDeadQueue;

            // A random intermediate group != the source group; a
            // draw of the destination group degenerates to minimal.
            const int gi =
                (gs + 1 +
                 static_cast<int>(
                     router.rng().nextBounded(topo_.g() - 1))) %
                topo_.g();
            int h_val = h_min;
            int q_val = q_min;
            if (gi != gd) {
                const RouterId entry = topo_.globalRouter(gi, gs);
                const RouterId gw = topo_.globalRouter(gs, gi);
                h_val = (cur == gw ? 1 : 2) +
                        topo_.minimalHops(entry, dst);
                const PortId pv = minimalPort(cur, entry);
                q_val = router.outputAlive(pv)
                            ? router.estimatedQueue(pv)
                            : kDeadQueue;
            }

            if (static_cast<long>(q_min + 1) * h_min <=
                static_cast<long>(q_val + 1) * h_val) {
                flit.routeMode = kModeMinimal;
            } else {
                flit.routeMode = kModeNonminimal;
                flit.intermediate = gi;
                flit.phase = 0;
            }
        }
    }

    RouterId target = dst;
    if (flit.routeMode == kModeNonminimal) {
        if (flit.phase == 0 &&
            topo_.groupOf(cur) == flit.intermediate)
            flit.phase = 1;
        if (flit.phase == 0) {
            // Toward the intermediate group's entry router (the far
            // end of the current group's global channel to it).
            target = topo_.globalRouter(flit.intermediate,
                                        topo_.groupOf(cur));
        }
    }
    const PortId p = minimalPort(cur, target);
    if (router.outputAlive(p))
        return {p, dateVc(flit)};
    return escapeHop(router, flit);
}

} // namespace fbfly
