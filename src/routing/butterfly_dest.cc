#include "routing/butterfly_dest.h"

#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

ButterflyDest::ButterflyDest(const Butterfly &topo) : topo_(topo)
{
}

RouteDecision
ButterflyDest::route(Router &router, Flit &flit)
{
    const int stage = topo_.stageOf(router.id());
    return {topo_.outputPortFor(stage, flit.dst), 0};
}

} // namespace fbfly
