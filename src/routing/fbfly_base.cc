#include "routing/fbfly_base.h"

#include "common/log.h"
#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

FbflyRouting::FbflyRouting(const FlattenedButterfly &topo)
    : topo_(topo)
{
}

RouterId
FbflyRouting::dstRouter(const Flit &flit) const
{
    return topo_.routerOf(flit.dst);
}

RouteDecision
FbflyRouting::eject(const Flit &flit) const
{
    return {topo_.terminalPort(flit.dst), 0};
}

int
FbflyRouting::lowestDiffDim(RouterId cur, RouterId tgt) const
{
    for (int d = 1; d <= topo_.numDims(); ++d) {
        if (topo_.routerDigit(cur, d) != topo_.routerDigit(tgt, d))
            return d;
    }
    return 0;
}

PortId
FbflyRouting::dorPort(RouterId cur, RouterId tgt) const
{
    const int d = lowestDiffDim(cur, tgt);
    FBFLY_ASSERT(d >= 1, "dorPort with cur == tgt");
    return topo_.portToward(cur, d, topo_.routerDigit(tgt, d));
}

PortId
FbflyRouting::bestProductive(Router &router, RouterId dst_router,
                             int &best_queue) const
{
    const RouterId cur = router.id();
    PortId best = kInvalid;
    best_queue = 0;
    int ties = 0;
    for (int d = 1; d <= topo_.numDims(); ++d) {
        const int dst_dig = topo_.routerDigit(dst_router, d);
        if (topo_.routerDigit(cur, d) == dst_dig)
            continue;
        const PortId p = topo_.portToward(cur, d, dst_dig);
        const int q = router.estimatedQueue(p);
        if (best == kInvalid || q < best_queue) {
            best = p;
            best_queue = q;
            ties = 1;
        } else if (q == best_queue) {
            // Reservoir-style uniform tie-break.
            ++ties;
            if (router.rng().nextBounded(ties) == 0)
                best = p;
        }
    }
    FBFLY_ASSERT(best != kInvalid, "no productive channel");
    return best;
}

RouteDecision
FbflyRouting::minimalHop(Router &router, Flit &flit,
                         int vc_offset) const
{
    const RouterId cur = router.id();
    const RouterId dst = dstRouter(flit);
    if (cur == dst)
        return eject(flit);
    const int diff = topo_.minimalHops(cur, dst);
    int q = 0;
    const PortId p = bestProductive(router, dst, q);
    return {p, vc_offset + diff - 1};
}

} // namespace fbfly
