#include "routing/fbfly_base.h"

#include <algorithm>

#include "common/log.h"
#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

FbflyRouting::FbflyRouting(const FlattenedButterfly &topo)
    : topo_(topo)
{
}

RouterId
FbflyRouting::dstRouter(const Flit &flit) const
{
    return topo_.routerOf(flit.dst);
}

RouteDecision
FbflyRouting::eject(const Flit &flit) const
{
    return {topo_.terminalPort(flit.dst), 0};
}

int
FbflyRouting::lowestDiffDim(RouterId cur, RouterId tgt) const
{
    for (int d = 1; d <= topo_.numDims(); ++d) {
        if (topo_.routerDigit(cur, d) != topo_.routerDigit(tgt, d))
            return d;
    }
    return 0;
}

PortId
FbflyRouting::dorPort(RouterId cur, RouterId tgt) const
{
    const int d = lowestDiffDim(cur, tgt);
    FBFLY_ASSERT(d >= 1, "dorPort with cur == tgt");
    return topo_.portToward(cur, d, topo_.routerDigit(tgt, d));
}

PortId
FbflyRouting::bestProductive(Router &router, RouterId dst_router,
                             int &best_queue) const
{
    const RouterId cur = router.id();
    PortId best = kInvalid;
    best_queue = 0;
    int ties = 0;
    for (int d = 1; d <= topo_.numDims(); ++d) {
        const int dst_dig = topo_.routerDigit(dst_router, d);
        if (topo_.routerDigit(cur, d) == dst_dig)
            continue;
        const PortId p = topo_.portToward(cur, d, dst_dig);
        if (!router.outputAlive(p))
            continue; // failed channel: masked from the candidates
        const int q = router.estimatedQueue(p);
        if (best == kInvalid || q < best_queue) {
            best = p;
            best_queue = q;
            ties = 1;
        } else if (q == best_queue) {
            // Reservoir-style uniform tie-break.
            ++ties;
            if (router.rng().nextBounded(ties) == 0)
                best = p;
        }
    }
    return best;
}

RouteDecision
FbflyRouting::minimalHop(Router &router, Flit &flit,
                         int vc_offset) const
{
    const RouterId cur = router.id();
    const RouterId dst = dstRouter(flit);
    if (cur == dst)
        return eject(flit);
    const int diff = topo_.minimalHops(cur, dst);
    int q = 0;
    const PortId p = bestProductive(router, dst, q);
    if (p == kInvalid)
        return escapeHop(router, flit, vc_offset);
    return {p, vc_offset + diff - 1};
}

RouteDecision
FbflyRouting::escapeHop(Router &router, Flit &flit,
                        int vc_offset) const
{
    const RouterId cur = router.id();
    const RouterId dst = dstRouter(flit);
    const int np = topo_.numDims();

    if (flit.misroutes >= misrouteBudget())
        return RouteDecision::dropped();

    // Pass 1: detour within a dimension the packet still has to
    // correct (keeps the minimal hop count).  Pass 2: step sideways
    // in an already-correct dimension (costs one extra hop).
    PortId pick = kInvalid;
    int count = 0;
    for (const bool differing : {true, false}) {
        for (int d = 1; d <= np; ++d) {
            const int own = topo_.routerDigit(cur, d);
            const int want = topo_.routerDigit(dst, d);
            if ((own != want) != differing)
                continue;
            for (int v = 0; v < topo_.k(); ++v) {
                if (v == own || (differing && v == want))
                    continue; // self / the (dead) productive port
                const PortId p = topo_.portToward(cur, d, v);
                if (!router.outputAlive(p))
                    continue;
                ++count;
                if (router.rng().nextBounded(count) == 0)
                    pick = p;
            }
        }
        if (pick != kInvalid)
            break;
    }
    if (pick == kInvalid)
        return RouteDecision::dropped(); // no alive channel at all

    ++flit.misroutes;
    const int diff = topo_.minimalHops(cur, dst);
    // Hops-remaining VC indexing, clamped into this phase's VC set;
    // a detour keeps diff constant, a sideways step raises it.
    return {pick, vc_offset + std::min(diff, np) - 1};
}

RouteDecision
FbflyRouting::dorHopAlive(Router &router, Flit &flit, RouterId tgt,
                          int vc_offset, VcId fixed_vc) const
{
    const RouterId cur = router.id();
    const int np = topo_.numDims();
    FBFLY_ASSERT(cur != tgt, "dorHopAlive with cur == tgt");

    const auto vcFor = [&](RouterId nbr) -> VcId {
        if (fixed_vc >= 0)
            return fixed_vc;
        const int after = topo_.minimalHops(nbr, tgt);
        return vc_offset + std::min(after, np - 1);
    };

    // The plain dimension-order hop, when its channel is alive.
    const int d0 = lowestDiffDim(cur, tgt);
    const int want0 = topo_.routerDigit(tgt, d0);
    const PortId direct = topo_.portToward(cur, d0, want0);
    if (router.outputAlive(direct))
        return {direct, vcFor(topo_.neighbor(cur, d0, want0))};

    // Productive hop in another differing dimension (still minimal,
    // merely out of dimension order).
    for (int d = d0 + 1; d <= np; ++d) {
        const int want = topo_.routerDigit(tgt, d);
        if (topo_.routerDigit(cur, d) == want)
            continue;
        const PortId p = topo_.portToward(cur, d, want);
        if (router.outputAlive(p))
            return {p, vcFor(topo_.neighbor(cur, d, want))};
    }

    // Non-minimal escape (budgeted) around the failure.
    if (flit.misroutes >= misrouteBudget())
        return RouteDecision::dropped();
    PortId pick = kInvalid;
    RouterId pickNbr = kInvalid;
    int count = 0;
    for (const bool differing : {true, false}) {
        for (int d = 1; d <= np; ++d) {
            const int own = topo_.routerDigit(cur, d);
            const int want = topo_.routerDigit(tgt, d);
            if ((own != want) != differing)
                continue;
            for (int v = 0; v < topo_.k(); ++v) {
                if (v == own || (differing && v == want))
                    continue;
                const PortId p = topo_.portToward(cur, d, v);
                if (!router.outputAlive(p))
                    continue;
                ++count;
                if (router.rng().nextBounded(count) == 0) {
                    pick = p;
                    pickNbr = topo_.neighbor(cur, d, v);
                }
            }
        }
        if (pick != kInvalid)
            break;
    }
    if (pick == kInvalid)
        return RouteDecision::dropped();
    ++flit.misroutes;
    return {pick, vcFor(pickNbr)};
}

} // namespace fbfly
