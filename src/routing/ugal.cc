#include "routing/ugal.h"

#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

Ugal::Ugal(const FlattenedButterfly &topo, bool sequential_alloc)
    : FbflyRouting(topo), seq_(sequential_alloc)
{
}

RouteDecision
Ugal::route(Router &router, Flit &flit)
{
    const RouterId cur = router.id();
    const RouterId dst = dstRouter(flit);
    const int np = topo_.numDims();

    if (flit.routeMode == kModeUndecided) {
        // The minimal-vs-nonminimal choice, made once at the source
        // router: minimize estimated delay = queue length x hops.
        if (cur == dst) {
            flit.routeMode = kModeMinimal;
        } else {
            // A path whose first channel has failed is estimated at a
            // prohibitive queue so the alternative wins unless it is
            // equally dead (then minimalHop's escape machinery takes
            // over anyway).
            constexpr int kDeadQueue = 1 << 20;

            const int h_min = topo_.minimalHops(cur, dst);
            int q_min = 0;
            if (bestProductive(router, dst, q_min) == kInvalid)
                q_min = kDeadQueue; // every productive channel failed

            const auto b = static_cast<RouterId>(
                router.rng().nextBounded(topo_.numRouters()));
            const int h_val =
                topo_.minimalHops(cur, b) + topo_.minimalHops(b, dst);
            int q_val = q_min;
            if (b != cur) {
                const PortId pb = dorPort(cur, b);
                q_val = router.outputAlive(pb)
                            ? router.estimatedQueue(pb)
                            : kDeadQueue;
            }

            // Estimated delay = (queue + the hop itself) x hops;
            // counting the hop keeps empty-queue comparisons honest
            // (an empty non-minimal path still costs h_val cycles).
            if (static_cast<long>(q_min + 1) * h_min <=
                static_cast<long>(q_val + 1) * h_val) {
                flit.routeMode = kModeMinimal;
            } else {
                flit.routeMode = kModeNonminimal;
                flit.intermediate = b;
                flit.phase = 0;
            }
        }
    }

    if (flit.routeMode == kModeMinimal) {
        // Route like MIN AD on the phase-1 VC set.
        return minimalHop(router, flit, np);
    }

    // Non-minimal: Valiant through the recorded intermediate, with
    // fault-aware dimension-order subroutes and hops-remaining VC
    // indexing (fixed_vc < 0).
    if (flit.phase == 0) {
        if (cur != flit.intermediate)
            return dorHopAlive(router, flit, flit.intermediate, 0,
                               /*fixed_vc=*/-1);
        flit.phase = 1;
    }
    if (cur == dst)
        return eject(flit);
    return dorHopAlive(router, flit, dst, np, /*fixed_vc=*/-1);
}

} // namespace fbfly
