#include "routing/ghc_minimal.h"

#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

GhcMinimal::GhcMinimal(const GeneralizedHypercube &topo) : topo_(topo)
{
}

RouteDecision
GhcMinimal::route(Router &router, Flit &flit)
{
    const RouterId r = router.id();
    const RouterId dst = flit.dst; // one terminal per router
    for (int d = 0; d < topo_.numDims(); ++d) {
        const int want = topo_.routerDigit(dst, d);
        if (topo_.routerDigit(r, d) != want)
            return {topo_.portToward(r, d, want), 0};
    }
    return {0, 0}; // terminal port
}

} // namespace fbfly
