#include "routing/dor.h"

#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

DimensionOrder::DimensionOrder(const FlattenedButterfly &topo)
    : FbflyRouting(topo)
{
}

RouteDecision
DimensionOrder::route(Router &router, Flit &flit)
{
    const RouterId cur = router.id();
    const RouterId dst = dstRouter(flit);
    if (cur == dst)
        return eject(flit);
    return {dorPort(cur, dst), 0};
}

} // namespace fbfly
