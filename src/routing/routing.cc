#include "routing/routing.h"

namespace fbfly
{

RoutingAlgorithm::~RoutingAlgorithm() = default;

} // namespace fbfly
