/**
 * @file
 * Adaptive (sequential) routing in a three-level folded Clos, the
 * natural extension of the SC'06 adaptive-Clos routing to the
 * paper's 3-stage configurations.
 *
 * Ascending hops (leaf->middle, middle->top) adaptively pick the
 * least-occupied uplink with a sequential allocator; the descent is
 * determined once the common-ancestor level is reached.  Traffic
 * turns around at the lowest common ancestor: same leaf -> eject,
 * same pod -> turn at a pod middle, otherwise through a top router.
 * Up-then-down ordering keeps a single VC deadlock-free.
 */

#ifndef FBFLY_ROUTING_FAT_TREE_ADAPTIVE_H
#define FBFLY_ROUTING_FAT_TREE_ADAPTIVE_H

#include "routing/routing.h"
#include "topology/fat_tree.h"

namespace fbfly
{

/**
 * Adaptive-up / deterministic-down fat-tree routing.
 */
class FatTreeAdaptive final : public RoutingAlgorithm
{
  public:
    explicit FatTreeAdaptive(const FatTree &topo);

    std::string name() const override
    {
        return "adaptive sequential (3-level)";
    }
    int numVcs() const override { return 1; }
    bool sequential() const override { return true; }
    RouteDecision route(Router &router, Flit &flit) override;

  private:
    /** Least-occupied port in [base, base+count), random ties. */
    PortId bestPort(Router &router, PortId base, int count) const;

    const FatTree &topo_;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_FAT_TREE_ADAPTIVE_H
