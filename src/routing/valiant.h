/**
 * @file
 * VAL — Valiant's non-minimal oblivious routing (paper Section 3.1).
 *
 * Every packet routes minimally (dimension order) to a uniformly
 * random intermediate router, then minimally to its destination.
 * This converts any traffic pattern into two phases of random
 * traffic, halving worst-case throughput loss at the cost of doubled
 * hop count and a 50% cap on benign throughput.  Two VCs, one per
 * phase, avoid deadlock.
 */

#ifndef FBFLY_ROUTING_VALIANT_H
#define FBFLY_ROUTING_VALIANT_H

#include "routing/fbfly_base.h"

namespace fbfly
{

/**
 * Valiant's randomized oblivious routing (VAL).
 */
class Valiant final : public FbflyRouting
{
  public:
    explicit Valiant(const FlattenedButterfly &topo);

    std::string name() const override { return "VAL"; }
    int numVcs() const override { return 2; }
    RouteDecision route(Router &router, Flit &flit) override;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_VALIANT_H
