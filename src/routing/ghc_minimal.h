/**
 * @file
 * Minimal dimension-order routing on the generalized hypercube.
 *
 * The 1980s GHC (paper Section 2.3) used minimal routing without
 * load balancing, which is why it "suffers the same performance
 * bottleneck as a conventional butterfly on adversarial traffic" —
 * this baseline lets that claim be demonstrated in simulation.
 */

#ifndef FBFLY_ROUTING_GHC_MINIMAL_H
#define FBFLY_ROUTING_GHC_MINIMAL_H

#include "routing/routing.h"
#include "topology/generalized_hypercube.h"

namespace fbfly
{

/**
 * Deterministic minimal GHC routing (dimension order, 1 VC).
 */
class GhcMinimal final : public RoutingAlgorithm
{
  public:
    explicit GhcMinimal(const GeneralizedHypercube &topo);

    std::string name() const override { return "GHC minimal"; }
    int numVcs() const override { return 1; }
    bool preservesFlowOrder() const override { return true; }
    RouteDecision route(Router &router, Flit &flit) override;

  private:
    const GeneralizedHypercube &topo_;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_GHC_MINIMAL_H
