#include "routing/clos_ad.h"

#include <climits>

#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

ClosAd::ClosAd(const FlattenedButterfly &topo) : FbflyRouting(topo)
{
}

RouteDecision
ClosAd::route(Router &router, Flit &flit)
{
    const RouterId cur = router.id();
    const RouterId dst = dstRouter(flit);
    const int np = topo_.numDims();
    const int k = topo_.k();

    if (cur == dst)
        return eject(flit);

    if (flit.routeMode == kModeUndecided) {
        // Source decision, made "like UGAL" (paper): compare the
        // minimal delay estimate against one randomly sampled
        // misrouting candidate within the common-ancestor
        // dimensions.  Sampling (rather than taking the best of all
        // k-2 alternatives) keeps the comparison unbiased, so benign
        // traffic stays minimal; the adaptive choice of the actual
        // intermediate happens in the ascent below.
        const int diff = topo_.minimalHops(cur, dst);
        const int h = topo_.highestDiffDim(cur, dst);
        int q_min = 0;
        (void)bestProductive(router, dst, q_min);
        // Estimated delay = (queue + the hop itself) x hops, as in
        // UGAL: counting the hop keeps empty-queue comparisons
        // honest at low load.
        const long cost_min = static_cast<long>(q_min + 1) * diff;

        long cost_nonmin = LONG_MAX;
        {
            const int d = 1 + static_cast<int>(
                router.rng().nextBounded(h));
            const int mine = topo_.routerDigit(cur, d);
            const int want = topo_.routerDigit(dst, d);
            int m = static_cast<int>(router.rng().nextBounded(k - 1));
            if (m >= mine)
                ++m;
            if (m != want || mine == want) {
                const PortId p = topo_.portToward(cur, d, m);
                // Misrouting in a differing dimension adds one hop;
                // in an already-correct dimension it adds two.
                const int hops =
                    diff + (m == want ? 0 : (mine != want ? 1 : 2));
                cost_nonmin =
                    static_cast<long>(router.estimatedQueue(p) + 1) *
                    hops;
            }
        }

        if (cost_min <= cost_nonmin) {
            flit.routeMode = kModeMinimal;
        } else {
            flit.routeMode = kModeNonminimal;
            flit.phase = 0;
            flit.ascendDim = 1;
            flit.ancestorDim = static_cast<std::int8_t>(h);
        }
    }

    if (flit.routeMode == kModeMinimal)
        return minimalHop(router, flit, np);

    if (flit.phase == 0) {
        // Ascend: per dimension, shortest queue among the k-1 real
        // channels and the dummy (stay) whose cost is the descending
        // channel this dimension will need later.  Misroute only on a
        // strict improvement so benign traffic stays minimal.
        while (flit.ascendDim <= flit.ancestorDim) {
            const int d = flit.ascendDim;
            const int mine = topo_.routerDigit(cur, d);
            const int want = topo_.routerDigit(dst, d);
            const int stay_cost =
                mine == want
                    ? 0
                    : router.estimatedQueue(
                          topo_.portToward(cur, d, want));

            int best_q = INT_MAX;
            int best_m = -1;
            int ties = 0;
            for (int m = 0; m < k; ++m) {
                if (m == mine)
                    continue;
                const int q = router.estimatedQueue(
                    topo_.portToward(cur, d, m));
                if (q < best_q) {
                    best_q = q;
                    best_m = m;
                    ties = 1;
                } else if (q == best_q) {
                    ++ties;
                    if (router.rng().nextBounded(ties) == 0)
                        best_m = m;
                }
            }

            flit.ascendDim = static_cast<std::int8_t>(d + 1);
            if (best_m >= 0 && best_q < stay_cost)
                return {topo_.portToward(cur, d, best_m), d - 1};
            // else: stay at this coordinate; consider the next
            // dimension without taking a hop.
        }
        flit.phase = 1;
    }

    // Descend: minimal adaptive on the phase-1 VC set.
    return minimalHop(router, flit, np);
}

} // namespace fbfly
