/**
 * @file
 * Dragonfly routing: minimal and UGAL-style adaptive, with the
 * VC-dated deadlock-avoidance scheme used across this repo — the VC
 * index equals the number of inter-router hops already taken, so
 * every channel dependency steps to a strictly higher VC and the
 * channel-dependency graph is acyclic (layered by date).
 *
 * Minimal routes are unique in this wiring (one global channel per
 * group pair, fixed gateway router): local -> global -> local, at
 * most 3 inter-router hops, so MIN needs 3 VCs.  UGAL picks, per
 * packet at the source router, between the minimal route and a
 * Valiant detour through a random intermediate *group* (at most
 * 2 + 3 = 5 hops, 5 VCs), comparing estimated delay = (queue + 1) x
 * hops like the flattened-butterfly UGAL (routing/ugal.cc).
 *
 * Fault handling follows GhcAdaptive: dead productive channels are
 * escaped via a random alive inter-router port under a misroute
 * budget, with the VC date clamped to the top VC — monotonicity no
 * longer holds on the escape path, so faulty runs rely on the
 * watchdog (docs/FAULTS.md).
 */

#ifndef FBFLY_ROUTING_DRAGONFLY_ROUTING_H
#define FBFLY_ROUTING_DRAGONFLY_ROUTING_H

#include "routing/routing.h"
#include "topology/dragonfly.h"

namespace fbfly
{

/** Shared machinery of the dragonfly algorithms. */
class DragonflyRouting : public RoutingAlgorithm
{
  protected:
    explicit DragonflyRouting(const Dragonfly &topo) : topo_(topo) {}

    RouterId dstRouter(const Flit &flit) const;
    /** Eject at the destination router (terminal port, VC 0). */
    RouteDecision eject(const Flit &flit) const;
    /** The unique minimal port from @p cur toward router @p target
     *  (which must differ from @p cur). */
    PortId minimalPort(RouterId cur, RouterId target) const;
    /** VC date: inter-router hops taken so far, clamped to the VC
     *  range (the clamp only engages on fault escapes). */
    VcId dateVc(const Flit &flit) const;
    /** Random alive inter-router port under the misroute budget. */
    RouteDecision escapeHop(Router &router, Flit &flit) const;

    const Dragonfly &topo_;
};

/**
 * Deterministic minimal dragonfly routing (3 VCs).
 */
class DragonflyMinimal final : public DragonflyRouting
{
  public:
    explicit DragonflyMinimal(const Dragonfly &topo)
        : DragonflyRouting(topo)
    {
    }

    std::string name() const override { return "DF MIN"; }
    int numVcs() const override { return 3; }
    RouteDecision route(Router &router, Flit &flit) override;
    bool preservesFlowOrder() const override { return true; }
};

/**
 * UGAL-style adaptive dragonfly routing (5 VCs): minimal vs Valiant
 * through a random intermediate group, chosen once at the source by
 * comparing estimated delays.
 */
class DragonflyUgal final : public DragonflyRouting
{
  public:
    explicit DragonflyUgal(const Dragonfly &topo)
        : DragonflyRouting(topo)
    {
    }

    std::string name() const override { return "DF UGAL"; }
    int numVcs() const override { return 5; }
    RouteDecision route(Router &router, Flit &flit) override;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_DRAGONFLY_ROUTING_H
