/**
 * @file
 * Shared machinery for routing algorithms on the flattened butterfly.
 *
 * All five algorithms of paper Section 3.1 (MIN AD, VAL, UGAL,
 * UGAL-S, CLOS AD) share the coordinate bookkeeping implemented here:
 * locating the destination router, enumerating productive channels,
 * dimension-order subroutes, and the VC numbering scheme.
 *
 * VC numbering (per port, 2n' VCs for the two-phase algorithms):
 *   phase 0 (toward an intermediate): VCs [0, n') — either indexed by
 *     the ascending dimension (CLOS AD) or by hops remaining to the
 *     intermediate (UGAL), both strictly monotonic along a route;
 *   phase 1 / minimal (toward the destination): VCs [n', 2n'),
 *     indexed by hops remaining, which strictly decreases.
 * Every packet's VC sequence is strictly increasing in the total order
 * (phase-0 VCs ascending, then phase-1 VCs descending from 2n'-1), so
 * the channel-dependency graph is acyclic and routing is
 * deadlock-free.  MIN AD uses only the n' hops-remaining VCs and VAL
 * only one VC per phase, as in the paper.
 */

#ifndef FBFLY_ROUTING_FBFLY_BASE_H
#define FBFLY_ROUTING_FBFLY_BASE_H

#include "routing/routing.h"
#include "topology/flattened_butterfly.h"

namespace fbfly
{

class Router;
struct Flit;

/**
 * Base class for flattened-butterfly routing algorithms.
 */
class FbflyRouting : public RoutingAlgorithm
{
  protected:
    explicit FbflyRouting(const FlattenedButterfly &topo);

    /** Destination router of a flit. */
    RouterId dstRouter(const Flit &flit) const;

    /** Decision that ejects the flit to its terminal (VC 0). */
    RouteDecision eject(const Flit &flit) const;

    /**
     * Lowest dimension in which @p cur and @p tgt differ
     * (dimension-order routing's next hop), or 0 if equal.
     */
    int lowestDiffDim(RouterId cur, RouterId tgt) const;

    /** Port of the dimension-order hop from @p cur toward @p tgt. */
    PortId dorPort(RouterId cur, RouterId tgt) const;

    /**
     * Productive port with the shortest estimated queue (paper:
     * "the productive channel with the shortest queue"), breaking
     * ties with the router's random stream.
     *
     * @param[out] best_queue the winning port's queue estimate.
     */
    PortId bestProductive(Router &router, RouterId dst_router,
                          int &best_queue) const;

    /**
     * One minimal-adaptive hop (or ejection) with VCs drawn from
     * [vc_offset, vc_offset + n') by hops remaining.
     */
    RouteDecision minimalHop(Router &router, Flit &flit,
                             int vc_offset) const;

    const FlattenedButterfly &topo_;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_FBFLY_BASE_H
