/**
 * @file
 * Shared machinery for routing algorithms on the flattened butterfly.
 *
 * All five algorithms of paper Section 3.1 (MIN AD, VAL, UGAL,
 * UGAL-S, CLOS AD) share the coordinate bookkeeping implemented here:
 * locating the destination router, enumerating productive channels,
 * dimension-order subroutes, and the VC numbering scheme.
 *
 * VC numbering (per port, 2n' VCs for the two-phase algorithms):
 *   phase 0 (toward an intermediate): VCs [0, n') — either indexed by
 *     the ascending dimension (CLOS AD) or by hops remaining to the
 *     intermediate (UGAL), both strictly monotonic along a route;
 *   phase 1 / minimal (toward the destination): VCs [n', 2n'),
 *     indexed by hops remaining, which strictly decreases.
 * Every packet's VC sequence is strictly increasing in the total order
 * (phase-0 VCs ascending, then phase-1 VCs descending from 2n'-1), so
 * the channel-dependency graph is acyclic and routing is
 * deadlock-free.  MIN AD uses only the n' hops-remaining VCs and VAL
 * only one VC per phase, as in the paper.
 */

#ifndef FBFLY_ROUTING_FBFLY_BASE_H
#define FBFLY_ROUTING_FBFLY_BASE_H

#include "routing/routing.h"
#include "topology/flattened_butterfly.h"

namespace fbfly
{

class Router;
struct Flit;

/**
 * Base class for flattened-butterfly routing algorithms.
 */
class FbflyRouting : public RoutingAlgorithm
{
  protected:
    explicit FbflyRouting(const FlattenedButterfly &topo);

    /** Destination router of a flit. */
    RouterId dstRouter(const Flit &flit) const;

    /** Decision that ejects the flit to its terminal (VC 0). */
    RouteDecision eject(const Flit &flit) const;

    /**
     * Lowest dimension in which @p cur and @p tgt differ
     * (dimension-order routing's next hop), or 0 if equal.
     */
    int lowestDiffDim(RouterId cur, RouterId tgt) const;

    /** Port of the dimension-order hop from @p cur toward @p tgt. */
    PortId dorPort(RouterId cur, RouterId tgt) const;

    /**
     * Productive port with the shortest estimated queue (paper:
     * "the productive channel with the shortest queue"), breaking
     * ties with the router's random stream.  Failed output ports are
     * masked from the candidate set.
     *
     * @param[out] best_queue the winning port's queue estimate.
     * @return the winning port, or kInvalid when every productive
     *         channel has failed (callers fall back to escapeHop).
     */
    PortId bestProductive(Router &router, RouterId dst_router,
                          int &best_queue) const;

    /**
     * One minimal-adaptive hop (or ejection) with VCs drawn from
     * [vc_offset, vc_offset + n') by hops remaining.  When every
     * productive channel has failed, falls back to a non-minimal
     * escape (escapeHop); when no escape exists the packet is
     * dropped as unreachable.
     */
    RouteDecision minimalHop(Router &router, Flit &flit,
                             int vc_offset) const;

    /**
     * Non-minimal escape around failed channels: a random alive hop
     * that stays within a dimension the packet still has to correct
     * (keeping the minimal hop count; the dimension's complete graph
     * offers alternate two-hop paths around any dead link), else a
     * random alive hop in an already-correct dimension.  Each escape
     * spends one unit of the packet's misroute budget; an exhausted
     * budget or a router with no alive inter-router port drops the
     * packet (RouteDecision::drop).
     *
     * VC selection stays within [vc_offset, vc_offset + n'), clamped
     * by hops remaining; strict VC monotonicity — and with it the
     * analytic deadlock-freedom guarantee — no longer holds on the
     * escape path, which is why the simulator kernel backs faulty
     * runs with a forward-progress watchdog (docs/FAULTS.md).
     */
    RouteDecision escapeHop(Router &router, Flit &flit,
                            int vc_offset) const;

    /**
     * Fault-aware dimension-order hop toward @p tgt (the VAL / UGAL
     * non-minimal subroutes): the plain DOR hop when its channel is
     * alive, else a productive hop in another differing dimension,
     * else a budgeted detour (same fallbacks as escapeHop).
     *
     * @param fixed_vc >= 0: use this VC for the hop (VAL's one VC
     *        per phase); < 0: index VCs by hops remaining within
     *        [vc_offset, vc_offset + n') (UGAL).
     */
    RouteDecision dorHopAlive(Router &router, Flit &flit,
                              RouterId tgt, int vc_offset,
                              VcId fixed_vc) const;

    /** Escape hops a packet may spend before being dropped. */
    int misrouteBudget() const { return 4 * topo_.numDims() + 8; }

    const FlattenedButterfly &topo_;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_FBFLY_BASE_H
