/**
 * @file
 * Destination-tag routing on the conventional butterfly (Table 1).
 *
 * The packet's path is fully determined by its destination address:
 * at stage s the output port is the destination digit rewritten by
 * that stage's wiring.  One VC; the network is feed-forward, so
 * routing is trivially deadlock-free.
 */

#ifndef FBFLY_ROUTING_BUTTERFLY_DEST_H
#define FBFLY_ROUTING_BUTTERFLY_DEST_H

#include "routing/routing.h"
#include "topology/butterfly.h"

namespace fbfly
{

/**
 * Destination-based butterfly routing.
 */
class ButterflyDest final : public RoutingAlgorithm
{
  public:
    explicit ButterflyDest(const Butterfly &topo);

    std::string name() const override { return "destination-based"; }
    int numVcs() const override { return 1; }
    bool preservesFlowOrder() const override { return true; }
    RouteDecision route(Router &router, Flit &flit) override;

  private:
    const Butterfly &topo_;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_BUTTERFLY_DEST_H
