#include "routing/hypercube_ecube.h"

#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

HypercubeEcube::HypercubeEcube(const Hypercube &topo) : topo_(topo)
{
}

RouteDecision
HypercubeEcube::route(Router &router, Flit &flit)
{
    const RouterId r = router.id();
    const std::uint32_t diff =
        static_cast<std::uint32_t>(r) ^
        static_cast<std::uint32_t>(flit.dst);
    if (diff == 0)
        return {topo_.dims(), 0}; // terminal port
    // Lowest differing bit first.
    const int d = __builtin_ctz(diff);
    return {d, 0};
}

} // namespace fbfly
