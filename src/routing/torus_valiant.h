/**
 * @file
 * Valiant's randomized routing on the torus.
 *
 * The paper's Section 6 traces its non-minimal routing to work on
 * tori (GOAL, Valiant): tornado-like patterns drive dimension-order
 * torus routing to a fraction of capacity, and routing through a
 * random intermediate restores worst-case throughput at the price of
 * doubled hop count.  Two phases x two dateline VCs = 4 VCs.
 */

#ifndef FBFLY_ROUTING_TORUS_VALIANT_H
#define FBFLY_ROUTING_TORUS_VALIANT_H

#include "routing/routing.h"
#include "topology/torus.h"

namespace fbfly
{

/**
 * Torus Valiant routing (4 VCs: phase x dateline).
 */
class TorusValiant final : public RoutingAlgorithm
{
  public:
    explicit TorusValiant(const Torus &topo);

    std::string name() const override { return "torus VAL"; }
    int numVcs() const override { return 4; }
    RouteDecision route(Router &router, Flit &flit) override;

  private:
    const Torus &topo_;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_TORUS_VALIANT_H
