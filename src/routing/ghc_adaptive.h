/**
 * @file
 * Minimal adaptive routing on the generalized hypercube, after
 * Young & Yalamanchili (the paper's reference [33], discussed in
 * Section 6).
 *
 * The packet may correct its differing digits in any order, choosing
 * at each hop the productive channel with the shortest queue.  This
 * adds path diversity over dimension-order GHC routing but — as the
 * paper notes — provides no load balancing for traffic that is
 * bottlenecked on a single productive channel, so it still collapses
 * on adversarial patterns that the flattened butterfly's non-minimal
 * routing spreads.
 *
 * Deadlock freedom uses the hops-remaining VC scheme (one VC per
 * dimension), like MIN AD on the flattened butterfly.
 */

#ifndef FBFLY_ROUTING_GHC_ADAPTIVE_H
#define FBFLY_ROUTING_GHC_ADAPTIVE_H

#include "routing/routing.h"
#include "topology/generalized_hypercube.h"

namespace fbfly
{

/**
 * Minimal adaptive GHC routing (n dims -> n VCs).
 */
class GhcAdaptive final : public RoutingAlgorithm
{
  public:
    explicit GhcAdaptive(const GeneralizedHypercube &topo);

    std::string name() const override { return "GHC adaptive"; }
    int numVcs() const override { return topo_.numDims(); }
    RouteDecision route(Router &router, Flit &flit) override;

  private:
    const GeneralizedHypercube &topo_;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_GHC_ADAPTIVE_H
