#include "routing/torus_dor.h"

#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

TorusDor::TorusDor(const Torus &topo) : topo_(topo)
{
}

RouteDecision
TorusDor::route(Router &router, Flit &flit)
{
    const RouterId cur = router.id();
    const RouterId dst = flit.dst; // one terminal per router
    const int k = topo_.k();

    // First routing decision (at the injection router): reset the
    // per-dimension scratch so dimension 0 starts on VC 0.
    if (flit.hops == 0 && flit.phase == 0) {
        flit.ascendDim = -1;
        flit.phase = 1;
    }

    for (int d = 0; d < topo_.n(); ++d) {
        const int mine = topo_.routerDigit(cur, d);
        const int want = topo_.routerDigit(dst, d);
        if (mine == want)
            continue;

        // Shorter way around the ring; ties go "+".
        const int fwd = (want - mine + k) % k;
        const bool plus = fwd <= k - fwd;

        // Dateline: VC 1 once the wrap edge of this dimension has
        // been crossed.  The flit's vc field carries the state
        // within the dimension; a packet entering a new dimension
        // starts back on VC 0 (a fresh, higher-ordered channel
        // class, so the dependency chain stays acyclic).
        const bool crossing_wrap =
            plus ? mine == k - 1 : mine == 0;
        VcId vc = flit.vc;
        if (flit.ascendDim != d) {
            // First hop in this dimension.
            vc = 0;
            flit.ascendDim = static_cast<std::int8_t>(d);
        }
        if (crossing_wrap)
            vc = 1;
        return {topo_.portFor(d, plus), vc};
    }
    return {2 * topo_.n(), 0}; // terminal port
}

} // namespace fbfly
