#include "routing/fat_tree_adaptive.h"

#include "common/log.h"
#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

FatTreeAdaptive::FatTreeAdaptive(const FatTree &topo) : topo_(topo)
{
}

PortId
FatTreeAdaptive::bestPort(Router &router, PortId base,
                          int count) const
{
    PortId best = kInvalid;
    int best_q = 0;
    int ties = 0;
    for (int i = 0; i < count; ++i) {
        const PortId p = base + i;
        const int q = router.estimatedQueue(p);
        if (best == kInvalid || q < best_q) {
            best = p;
            best_q = q;
            ties = 1;
        } else if (q == best_q) {
            ++ties;
            if (router.rng().nextBounded(ties) == 0)
                best = p;
        }
    }
    return best;
}

RouteDecision
FatTreeAdaptive::route(Router &router, Flit &flit)
{
    const RouterId r = router.id();
    const RouterId dst_leaf = topo_.leafOf(flit.dst);
    const int dst_pod = topo_.podOfLeaf(dst_leaf);
    const int dst_leaf_in_pod = dst_leaf % topo_.p();

    switch (topo_.levelOf(r)) {
      case FatTree::Level::Leaf:
        if (r == dst_leaf)
            return {topo_.ejectionPort(flit.dst), 0};
        // Ascend: any pod middle reaches the whole pod; if the
        // destination is outside the pod, any middle also reaches
        // the tops.  Pick the least-occupied uplink.
        return {bestPort(router, topo_.leafUplinkPort(0),
                         topo_.u1()),
                0};

      case FatTree::Level::Middle:
        if (topo_.podOfMiddle(r) == dst_pod) {
            // Turn around (or descend) within the pod.
            return {topo_.middleDownPort(dst_leaf_in_pod), 0};
        }
        // Ascend to a top router, least-occupied uplink.
        return {bestPort(router, topo_.middleUplinkPort(0),
                         topo_.u2()),
                0};

      case FatTree::Level::Top:
        // Descend: any middle of the destination pod works; pick the
        // least-occupied down channel into that pod.
        return {bestPort(router,
                         topo_.topDownPort(dst_pod, 0),
                         topo_.u1()),
                0};
    }
    FBFLY_PANIC("unreachable fat-tree level");
}

} // namespace fbfly
