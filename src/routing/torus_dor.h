/**
 * @file
 * Dimension-order routing on the torus, with dateline VCs.
 *
 * Dimensions are corrected in ascending order, taking the shorter
 * way around each ring.  Wrap-around rings create cyclic channel
 * dependencies, broken with the classic dateline scheme: a packet
 * starts each dimension on VC 0 and moves to VC 1 after crossing the
 * ring's wrap-around edge (digit k-1 -> 0 going "+", 0 -> k-1 going
 * "-"), which cuts every ring cycle [Dally & Seitz].
 */

#ifndef FBFLY_ROUTING_TORUS_DOR_H
#define FBFLY_ROUTING_TORUS_DOR_H

#include "routing/routing.h"
#include "topology/torus.h"

namespace fbfly
{

/**
 * Deterministic torus dimension-order routing (2 VCs).
 */
class TorusDor final : public RoutingAlgorithm
{
  public:
    explicit TorusDor(const Torus &topo);

    std::string name() const override { return "torus DOR"; }
    int numVcs() const override { return 2; }
    /** Same-flow packets take one path through one VC schedule (the
     *  dateline transition happens at a fixed position on that path),
     *  so per-VC FIFO preserves flow order. */
    bool preservesFlowOrder() const override { return true; }
    RouteDecision route(Router &router, Flit &flit) override;

  private:
    const Torus &topo_;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_TORUS_DOR_H
