#include "routing/folded_clos_adaptive.h"

#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

FoldedClosAdaptive::FoldedClosAdaptive(const FoldedClos &topo)
    : topo_(topo)
{
}

RouteDecision
FoldedClosAdaptive::route(Router &router, Flit &flit)
{
    const RouterId r = router.id();
    const RouterId dst_leaf = topo_.leafOf(flit.dst);

    if (!topo_.isLeaf(r)) {
        // Middle stage: one deterministic down channel per leaf.
        return {topo_.downPort(dst_leaf), 0};
    }
    if (r == dst_leaf) {
        // Local (or descending) traffic: eject.
        return {topo_.ejectionPort(flit.dst), 0};
    }

    // Ascend on the least-occupied uplink (sequential allocator).
    PortId best = kInvalid;
    int best_q = 0;
    int ties = 0;
    for (int i = 0; i < topo_.u(); ++i) {
        const PortId p = topo_.uplinkPort(i);
        const int q = router.estimatedQueue(p);
        if (best == kInvalid || q < best_q) {
            best = p;
            best_q = q;
            ties = 1;
        } else if (q == best_q) {
            ++ties;
            if (router.rng().nextBounded(ties) == 0)
                best = p;
        }
    }
    return {best, 0};
}

} // namespace fbfly
