/**
 * @file
 * Adaptive (sequential) routing in a folded Clos, after Kim, Dally &
 * Abts, "Adaptive Routing in High-radix Clos Network" (SC'06) — the
 * folded-Clos row of the paper's Table 1.
 *
 * Going up, a packet picks the uplink with the shortest estimated
 * queue using a sequential allocator; coming down the path is
 * deterministic (each middle router has exactly one channel per
 * leaf).  Up-then-down ordering makes one VC deadlock-free.
 */

#ifndef FBFLY_ROUTING_FOLDED_CLOS_ADAPTIVE_H
#define FBFLY_ROUTING_FOLDED_CLOS_ADAPTIVE_H

#include "routing/routing.h"
#include "topology/folded_clos.h"

namespace fbfly
{

/**
 * Adaptive-up / deterministic-down folded-Clos routing.
 */
class FoldedClosAdaptive final : public RoutingAlgorithm
{
  public:
    explicit FoldedClosAdaptive(const FoldedClos &topo);

    std::string name() const override { return "adaptive sequential"; }
    int numVcs() const override { return 1; }
    bool sequential() const override { return true; }
    RouteDecision route(Router &router, Flit &flit) override;

  private:
    const FoldedClos &topo_;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_FOLDED_CLOS_ADAPTIVE_H
