#include "routing/torus_valiant.h"

#include "common/log.h"
#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

TorusValiant::TorusValiant(const Torus &topo) : topo_(topo)
{
}

RouteDecision
TorusValiant::route(Router &router, Flit &flit)
{
    const RouterId cur = router.id();
    const int k = topo_.k();

    if (flit.phase == 0 && flit.intermediate == kInvalid) {
        // First decision, at the source router.
        flit.intermediate = static_cast<std::int32_t>(
            router.rng().nextBounded(topo_.numRouters()));
        flit.ascendDim = -1;
    }
    if (flit.phase == 0 && cur == flit.intermediate) {
        flit.phase = 1;
        flit.ascendDim = -1;
    }
    const RouterId tgt =
        flit.phase == 0 ? flit.intermediate : flit.dst;
    if (flit.phase == 1 && cur == tgt)
        return {2 * topo_.n(), 0}; // terminal port

    for (int d = 0; d < topo_.n(); ++d) {
        const int mine = topo_.routerDigit(cur, d);
        const int want = topo_.routerDigit(tgt, d);
        if (mine == want)
            continue;
        const int fwd = (want - mine + k) % k;
        const bool plus = fwd <= k - fwd;
        const bool crossing_wrap =
            plus ? mine == k - 1 : mine == 0;

        // Dateline VC within the phase's pair of VCs.
        VcId vc = flit.vc;
        const VcId base = flit.phase == 0 ? 0 : 2;
        if (flit.ascendDim != d) {
            vc = base;
            flit.ascendDim = static_cast<std::int8_t>(d);
        }
        if (crossing_wrap)
            vc = base + 1;
        // A phase-0 VC leaking into phase 1 (intermediate reached
        // mid-dimension) is prevented by the ascendDim reset above.
        if (vc < base)
            vc = base;
        return {topo_.portFor(d, plus), vc};
    }
    // Phase 0 target reached exactly here (cur == intermediate was
    // handled above), so only phase 1 can fall through.
    FBFLY_PANIC("torus VAL routing fell through");
}

} // namespace fbfly
