/**
 * @file
 * UGAL / UGAL-S — universal globally-adaptive load-balanced routing
 * (paper Section 3.1, after Singh).
 *
 * At the source router, each packet chooses between the minimal route
 * (MIN AD) and Valiant's non-minimal route through a random
 * intermediate by comparing estimated delays — the product of queue
 * length and hop count for each choice.  Benign traffic and low loads
 * route minimally; adversarial traffic at high load routes
 * non-minimally.
 *
 * UGAL uses the greedy routing-decision allocator (all inputs of a
 * router decide on the same queue snapshot each cycle).  UGAL-S is
 * identical but uses the sequential allocator, which removes the
 * transient load imbalance of greedy allocation (Figure 5).
 */

#ifndef FBFLY_ROUTING_UGAL_H
#define FBFLY_ROUTING_UGAL_H

#include "routing/fbfly_base.h"

namespace fbfly
{

/**
 * UGAL (greedy) and UGAL-S (sequential) routing.
 */
class Ugal final : public FbflyRouting
{
  public:
    /**
     * @param topo the flattened butterfly.
     * @param sequential_alloc true for UGAL-S.
     */
    Ugal(const FlattenedButterfly &topo, bool sequential_alloc);

    std::string name() const override
    {
        return seq_ ? "UGAL-S" : "UGAL";
    }
    int numVcs() const override { return 2 * topo_.numDims(); }
    bool sequential() const override { return seq_; }
    RouteDecision route(Router &router, Flit &flit) override;

  private:
    bool seq_;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_UGAL_H
