/**
 * @file
 * Routing-algorithm interface.
 *
 * A RoutingAlgorithm is consulted once per packet per router, when the
 * packet's head flit reaches the front of an input VC with no route
 * assigned.  The algorithm inspects the router's output-queue
 * estimates (derived from credit counts, paper Section 3.1) and
 * returns an (output port, output VC) pair, possibly mutating the head
 * flit's routing scratch state (phase, intermediate, ...).
 *
 * The `sequential()` flag selects the routing-decision allocator of
 * Section 3.1: sequential allocators make each input's decision
 * visible to the next input within the same cycle; greedy allocators
 * let every input decide on the same snapshot and apply the updates
 * en masse afterwards — the source of the transient load imbalance
 * shown in the paper's Figure 5.
 */

#ifndef FBFLY_ROUTING_ROUTING_H
#define FBFLY_ROUTING_ROUTING_H

#include <string>

#include "common/types.h"

namespace fbfly
{

class Router;
struct Flit;

/** The result of a routing decision. */
struct RouteDecision
{
    PortId outPort = kInvalid;
    VcId outVc = kInvalid;
    /**
     * Drop the packet instead of forwarding it: the algorithm has
     * determined the destination is unreachable (all productive and
     * escape channels failed, or the misroute budget is exhausted).
     * The router removes the flit, returns the buffer credit, and
     * counts the loss (NetworkStats::flitsDropped /
     * packetsUnreachable) so experiments terminate with an explicit
     * "unreachable" status instead of hanging.
     */
    bool drop = false;

    /** A decision that drops the packet as unreachable. */
    static RouteDecision dropped() { return {kInvalid, kInvalid, true}; }
};

/**
 * Abstract routing algorithm, shared by all routers of a network.
 */
class RoutingAlgorithm
{
  public:
    virtual ~RoutingAlgorithm();

    /** Human-readable name for reports ("UGAL-S", "CLOS AD", ...). */
    virtual std::string name() const = 0;

    /** Virtual channels per port this algorithm needs for deadlock
     *  freedom. */
    virtual int numVcs() const = 0;

    /**
     * Decide the next hop for the packet headed by @p flit at
     * @p router.
     *
     * May mutate @p flit's routing scratch fields.  The decision is
     * final: the packet waits for credits on the returned (port, VC)
     * rather than re-routing.
     */
    virtual RouteDecision route(Router &router, Flit &flit) = 0;

    /** True: sequential routing-decision allocator (UGAL-S, CLOS AD). */
    virtual bool sequential() const { return false; }

    /**
     * True when the algorithm guarantees per-flow FIFO delivery: all
     * packets of one (src, dst) pair follow a single deterministic
     * path through the same VCs, so the routers' per-VC FIFO
     * discipline preserves their injection order end to end.
     *
     * Deterministic single-path algorithms (DOR, destination-tag,
     * e-cube, torus DOR, minimal GHC) override this to true.
     * Adaptive and non-minimal algorithms must leave it false:
     * routing same-flow packets through different intermediates or
     * adaptively chosen channels reorders them even at a zero error
     * rate — VAL and UGAL measurably do — which is inherent to
     * multipath routing, not a delivery failure.  The delivery
     * oracle (sim/delivery_oracle.h) audits per-flow order only when
     * this returns true; otherwise reorders are reported but do not
     * dirty the run.
     */
    virtual bool preservesFlowOrder() const { return false; }
};

} // namespace fbfly

#endif // FBFLY_ROUTING_ROUTING_H
