#include "routing/min_adaptive.h"

namespace fbfly
{

MinAdaptive::MinAdaptive(const FlattenedButterfly &topo)
    : FbflyRouting(topo)
{
}

RouteDecision
MinAdaptive::route(Router &router, Flit &flit)
{
    return minimalHop(router, flit, 0);
}

} // namespace fbfly
