/**
 * @file
 * Slim Fly routing: minimal adaptive and UGAL-style adaptive, with
 * the VC-dated deadlock-avoidance scheme — the VC index equals the
 * number of inter-router hops already taken, so every channel
 * dependency steps to a strictly higher VC and the channel-dependency
 * graph is acyclic.
 *
 * The MMS graph has diameter 2, and a non-adjacent router pair
 * usually has several common neighbors: minimal routing is adaptive
 * among them (shortest estimated queue, random tie-break), needing
 * just 2 VCs.  UGAL adds a per-packet choice at the source between
 * the minimal route and a Valiant detour through a random
 * intermediate router (at most 2 + 2 = 4 hops, 4 VCs), comparing
 * estimated delay = (queue + 1) x hops like the flattened-butterfly
 * UGAL (routing/ugal.cc).
 *
 * Fault handling follows GhcAdaptive: dead channels are masked from
 * the candidate sets; when every productive channel is dead the
 * packet takes a budgeted random escape hop with the VC date clamped
 * to the top VC (watchdog-backed, docs/FAULTS.md).
 */

#ifndef FBFLY_ROUTING_SLIM_FLY_ROUTING_H
#define FBFLY_ROUTING_SLIM_FLY_ROUTING_H

#include "routing/routing.h"
#include "topology/slim_fly.h"

namespace fbfly
{

/** Shared machinery of the Slim Fly algorithms. */
class SlimFlyRouting : public RoutingAlgorithm
{
  protected:
    explicit SlimFlyRouting(const SlimFly &topo) : topo_(topo) {}

    RouterId dstRouter(const Flit &flit) const;
    RouteDecision eject(const Flit &flit) const;
    /** Best alive productive port toward @p target: the direct
     *  channel when adjacent, else the shortest-queue common
     *  neighbor (random tie-break).  kInvalid when every productive
     *  channel is dead; @p queue_out reports the winner's estimated
     *  queue. */
    PortId bestMinimalPort(Router &router, RouterId target,
                           int &queue_out) const;
    /** VC date: inter-router hops taken so far, clamped to the VC
     *  range (the clamp only engages on fault escapes). */
    VcId dateVc(const Flit &flit) const;
    /** Random alive inter-router port under the misroute budget. */
    RouteDecision escapeHop(Router &router, Flit &flit) const;

    const SlimFly &topo_;
};

/**
 * Minimal adaptive Slim Fly routing (2 VCs).
 */
class SlimFlyMinimal final : public SlimFlyRouting
{
  public:
    explicit SlimFlyMinimal(const SlimFly &topo)
        : SlimFlyRouting(topo)
    {
    }

    std::string name() const override { return "SF MIN"; }
    int numVcs() const override { return 2; }
    RouteDecision route(Router &router, Flit &flit) override;
};

/**
 * UGAL-style adaptive Slim Fly routing (4 VCs): minimal vs Valiant
 * through a random intermediate router, chosen once at the source by
 * comparing estimated delays.
 */
class SlimFlyUgal final : public SlimFlyRouting
{
  public:
    explicit SlimFlyUgal(const SlimFly &topo) : SlimFlyRouting(topo)
    {
    }

    std::string name() const override { return "SF UGAL"; }
    int numVcs() const override { return 4; }
    RouteDecision route(Router &router, Flit &flit) override;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_SLIM_FLY_ROUTING_H
