#include "routing/valiant.h"

#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

Valiant::Valiant(const FlattenedButterfly &topo) : FbflyRouting(topo)
{
}

RouteDecision
Valiant::route(Router &router, Flit &flit)
{
    const RouterId cur = router.id();

    if (flit.phase == 0) {
        if (flit.intermediate == kInvalid) {
            // First decision, at the source router: draw b uniformly.
            flit.intermediate = static_cast<std::int32_t>(
                router.rng().nextBounded(topo_.numRouters()));
        }
        if (cur != flit.intermediate)
            return dorHopAlive(router, flit, flit.intermediate, 0,
                               /*fixed_vc=*/0);
        flit.phase = 1;
    }

    const RouterId dst = dstRouter(flit);
    if (cur == dst)
        return eject(flit);
    return dorHopAlive(router, flit, dst, 0, /*fixed_vc=*/1);
}

} // namespace fbfly
