#include "routing/slim_fly_routing.h"

#include <algorithm>

#include "common/log.h"
#include "network/flit.h"
#include "network/router.h"

namespace fbfly
{

RouterId
SlimFlyRouting::dstRouter(const Flit &flit) const
{
    return topo_.injectionRouter(flit.dst);
}

RouteDecision
SlimFlyRouting::eject(const Flit &flit) const
{
    return {topo_.ejectionPort(flit.dst), 0};
}

PortId
SlimFlyRouting::bestMinimalPort(Router &router, RouterId target,
                                int &queue_out) const
{
    const RouterId cur = router.id();
    FBFLY_ASSERT(cur != target, "bestMinimalPort at the target");
    if (topo_.adjacent(cur, target)) {
        const PortId p = topo_.portToward(cur, target);
        if (!router.outputAlive(p))
            return kInvalid;
        queue_out = router.estimatedQueue(p);
        return p;
    }
    // Distance 2: any alive neighbor adjacent to the target is a
    // productive first hop; pick the shortest queue, random ties.
    PortId best = kInvalid;
    int best_q = 0;
    int ties = 0;
    for (PortId p = topo_.p(); p < topo_.radix(); ++p) {
        if (!router.outputAlive(p))
            continue;
        const RouterId n = topo_.neighborAt(cur, p);
        if (!topo_.adjacent(n, target))
            continue;
        const int q = router.estimatedQueue(p);
        if (best == kInvalid || q < best_q) {
            best = p;
            best_q = q;
            ties = 1;
        } else if (q == best_q) {
            ++ties;
            if (router.rng().nextBounded(ties) == 0)
                best = p;
        }
    }
    queue_out = best_q;
    return best;
}

VcId
SlimFlyRouting::dateVc(const Flit &flit) const
{
    return std::min(flit.hops, numVcs() - 1);
}

RouteDecision
SlimFlyRouting::escapeHop(Router &router, Flit &flit) const
{
    // Every productive channel has failed: budgeted random escape on
    // any alive inter-router port, VC date clamped to the top VC
    // (monotonicity no longer holds; the watchdog backs faulty runs).
    if (flit.misroutes >= 4 * 2 + 8)
        return RouteDecision::dropped();
    PortId pick = kInvalid;
    int count = 0;
    for (PortId p = topo_.p(); p < topo_.radix(); ++p) {
        if (!router.outputAlive(p))
            continue;
        ++count;
        if (router.rng().nextBounded(count) == 0)
            pick = p;
    }
    if (pick == kInvalid)
        return RouteDecision::dropped(); // no alive channel at all
    ++flit.misroutes;
    return {pick, dateVc(flit)};
}

RouteDecision
SlimFlyMinimal::route(Router &router, Flit &flit)
{
    const RouterId cur = router.id();
    const RouterId dst = dstRouter(flit);
    if (cur == dst)
        return eject(flit);
    int q = 0;
    const PortId p = bestMinimalPort(router, dst, q);
    if (p != kInvalid)
        return {p, dateVc(flit)};
    return escapeHop(router, flit);
}

RouteDecision
SlimFlyUgal::route(Router &router, Flit &flit)
{
    const RouterId cur = router.id();
    const RouterId dst = dstRouter(flit);
    if (cur == dst)
        return eject(flit);

    if (flit.routeMode == kModeUndecided) {
        // The minimal-vs-nonminimal choice, made once at the source
        // router: minimize estimated delay = (queue + 1) x hops,
        // like the flattened-butterfly UGAL.
        constexpr int kDeadQueue = 1 << 20;

        const int h_min = topo_.minimalHops(cur, dst);
        int q_min = 0;
        if (bestMinimalPort(router, dst, q_min) == kInvalid)
            q_min = kDeadQueue; // every productive channel failed

        const auto b = static_cast<RouterId>(
            router.rng().nextBounded(topo_.numRouters()));
        const int h_val =
            topo_.minimalHops(cur, b) + topo_.minimalHops(b, dst);
        int q_val = q_min;
        if (b != cur) {
            int q = 0;
            q_val = bestMinimalPort(router, b, q) != kInvalid
                        ? q
                        : kDeadQueue;
        }

        if (static_cast<long>(q_min + 1) * h_min <=
            static_cast<long>(q_val + 1) * h_val) {
            flit.routeMode = kModeMinimal;
        } else {
            flit.routeMode = kModeNonminimal;
            flit.intermediate = b;
            flit.phase = 0;
        }
    }

    RouterId target = dst;
    if (flit.routeMode == kModeNonminimal) {
        if (flit.phase == 0 && cur == flit.intermediate)
            flit.phase = 1;
        if (flit.phase == 0)
            target = flit.intermediate;
    }
    int q = 0;
    const PortId p = bestMinimalPort(router, target, q);
    if (p != kInvalid)
        return {p, dateVc(flit)};
    return escapeHop(router, flit);
}

} // namespace fbfly
