/**
 * @file
 * Deterministic dimension-order (minimal) routing on the flattened
 * butterfly.
 *
 * Fixes the lowest differing dimension first.  Used standalone as the
 * oblivious minimal baseline and as the per-phase subroute of VAL
 * (paper Section 3.1: "our evaluation uses dimension order routing").
 * Deadlock-free on a single VC: each hop is taken in a strictly higher
 * dimension than the last, so the channel dependency graph is acyclic.
 */

#ifndef FBFLY_ROUTING_DOR_H
#define FBFLY_ROUTING_DOR_H

#include "routing/fbfly_base.h"

namespace fbfly
{

/**
 * Minimal dimension-order routing (1 VC).
 */
class DimensionOrder final : public FbflyRouting
{
  public:
    explicit DimensionOrder(const FlattenedButterfly &topo);

    std::string name() const override { return "DOR"; }
    int numVcs() const override { return 1; }
    bool preservesFlowOrder() const override { return true; }
    RouteDecision route(Router &router, Flit &flit) override;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_DOR_H
