/**
 * @file
 * SWITCHABLE — an online routing adaptor over MIN AD / UGAL / VAL.
 *
 * The dynamic-service harness (src/harness/churn.h) re-evaluates the
 * routing policy at every epoch boundary from ObsSampler
 * channel-utilization telemetry: balanced low load routes minimally,
 * imbalanced load flips to UGAL, and pathological imbalance under
 * headroom flips to fully randomized VAL.  This class makes that
 * switch safe mid-flight:
 *
 *  - **per-packet pinning** — a packet is stamped with the policy in
 *    force at its *first* routing decision (Flit::routeAlgo) and
 *    follows that one algorithm to its destination, so a mid-flight
 *    switch never mixes two algorithms' route/VC state machines
 *    within one packet;
 *  - **shared VC budget** — numVcs() is the maximum requirement of
 *    the member algorithms (2n'), and every member's VC usage is a
 *    subset of [0, 2n'), so a single network configuration serves
 *    all three.  Packets pinned to different algorithms do share VC
 *    lanes, which voids the per-algorithm analytic deadlock-freedom
 *    arguments during the (transient) mixing window — churn runs are
 *    therefore always backed by the forward-progress watchdog, like
 *    faulty runs (docs/FAULTS.md).
 *
 * Determinism: switching is driven only by simulation state (epoch
 * schedule + telemetry), and route draws use the routers' own RNG
 * streams, so churn sweeps remain bit-identical at any --threads N.
 */

#ifndef FBFLY_ROUTING_SWITCHABLE_H
#define FBFLY_ROUTING_SWITCHABLE_H

#include <atomic>
#include <cstdint>

#include "routing/min_adaptive.h"
#include "routing/ugal.h"
#include "routing/valiant.h"

namespace fbfly
{

/** The member algorithms a SwitchableRouting can pin packets to. */
enum class RouteAlgoId : std::int8_t
{
    kMinAdaptive = 0,
    kUgal = 1,
    kValiant = 2,
};

/** Short stable name ("MIN AD", "UGAL", "VAL"). */
const char *toString(RouteAlgoId id);

/**
 * Routing adaptor that dispatches per packet to one of MIN AD, UGAL
 * (greedy) or VAL, selectable between cycles.
 *
 * Not shared across concurrent simulations: select() mutates the
 * policy, so every sweep point builds its own instance (unlike the
 * stateless paper algorithms, which sweeps may share).
 */
class SwitchableRouting final : public RoutingAlgorithm
{
  public:
    explicit SwitchableRouting(
        const FlattenedButterfly &topo,
        RouteAlgoId initial = RouteAlgoId::kMinAdaptive);

    std::string name() const override { return "SWITCHABLE"; }

    /** Max over the members: UGAL's 2n'. */
    int numVcs() const override { return ugal_.numVcs(); }

    /** All members use the greedy routing-decision allocator. */
    bool sequential() const override { return false; }

    /** Multipath in general (VAL/UGAL phases, adaptive choices). */
    bool preservesFlowOrder() const override { return false; }

    /**
     * Dispatch to the pinned member, pinning the packet to the
     * currently selected policy at its first decision.
     */
    RouteDecision route(Router &router, Flit &flit) override;

    /** @name Online policy control (between cycles) @{ */

    /** Switch the policy applied to packets not yet pinned.  No-op
     *  (not counted) when @p id is already selected. */
    void select(RouteAlgoId id);

    RouteAlgoId selected() const { return current_; }

    /** Policy changes applied so far (excludes no-op selects). */
    std::uint64_t switches() const { return switches_; }

    /** Packets routed under each policy (pinned at first hop). */
    std::uint64_t packetsPinned(RouteAlgoId id) const
    {
        return pinned_[static_cast<std::size_t>(id)].load(
            std::memory_order_relaxed);
    }

    /** @} */

  private:
    MinAdaptive min_;
    Ugal ugal_;
    Valiant val_;
    RouteAlgoId current_;
    std::uint64_t switches_ = 0;
    /** Relaxed atomics: route() runs concurrently across shards and
     *  these are order-independent totals (per-shard increments sum
     *  the same in any interleaving, so sweeps stay deterministic). */
    std::atomic<std::uint64_t> pinned_[3] = {};
};

} // namespace fbfly

#endif // FBFLY_ROUTING_SWITCHABLE_H
