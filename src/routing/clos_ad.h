/**
 * @file
 * CLOS AD — non-minimal adaptive routing in a flattened Clos
 * (paper Section 3.1).
 *
 * Like UGAL, each packet chooses between minimal and non-minimal at
 * the source using queue lengths to estimate delay; unlike UGAL, a
 * non-minimal packet does not commit to a random intermediate.
 * Instead it is routed as if adaptively ascending to the middle stage
 * of a folded Clos: in each dimension (taken in ascending order up to
 * the closest-common-ancestor dimension) it takes the channel with
 * the shortest queue — including a "dummy queue" for staying at the
 * current coordinate, whose cost is the queue of the descending
 * channel that staying will require later.  The intermediate is thus
 * chosen adaptively among the closest common ancestors, so the hop
 * count never exceeds that of the corresponding folded Clos.
 *
 * CLOS AD uses a sequential routing-decision allocator, eliminating
 * both sources of transient load imbalance identified in Section 3.2.
 */

#ifndef FBFLY_ROUTING_CLOS_AD_H
#define FBFLY_ROUTING_CLOS_AD_H

#include "routing/fbfly_base.h"

namespace fbfly
{

/**
 * Adaptive flattened-Clos routing (CLOS AD).
 */
class ClosAd final : public FbflyRouting
{
  public:
    explicit ClosAd(const FlattenedButterfly &topo);

    std::string name() const override { return "CLOS AD"; }
    int numVcs() const override { return 2 * topo_.numDims(); }
    bool sequential() const override { return true; }
    RouteDecision route(Router &router, Flit &flit) override;
};

} // namespace fbfly

#endif // FBFLY_ROUTING_CLOS_AD_H
