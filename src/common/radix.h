/**
 * @file
 * Radix-k address arithmetic.
 *
 * The flattened butterfly (paper Section 2.2) labels each node with an
 * n-digit radix-k address; an inter-router hop in dimension d changes
 * the d-th digit and the final hop to the terminal sets digit 0.
 * These helpers implement that digit algebra for all topologies that
 * use coordinate addressing (flattened butterfly, butterfly,
 * hypercube, generalized hypercube).
 */

#ifndef FBFLY_COMMON_RADIX_H
#define FBFLY_COMMON_RADIX_H

#include <cstdint>
#include <vector>

namespace fbfly
{

/** Extract digit @p d (0 = least significant) of @p value in radix @p k. */
int digit(std::int64_t value, int d, int k);

/** Return @p value with digit @p d (radix @p k) replaced by @p v. */
std::int64_t setDigit(std::int64_t value, int d, int k, int v);

/** Decompose @p value into @p n radix-@p k digits (index 0 = LSD). */
std::vector<int> toDigits(std::int64_t value, int n, int k);

/** Compose radix-@p k digits (index 0 = LSD) back into an integer. */
std::int64_t fromDigits(const std::vector<int> &digits, int k);

/**
 * Count the digits (among digits [lo, n)) in which two values differ.
 *
 * For two router addresses in a k-ary n-flat this is the minimal
 * inter-router hop count; the paper's path-diversity result is that
 * i differing digits give i! minimal routes.
 */
int countDiffDigits(std::int64_t a, std::int64_t b, int n, int k,
                    int lo = 0);

/** Integer power k^n (n >= 0), checked against 64-bit overflow. */
std::int64_t ipow(std::int64_t k, int n);

/** Ceil(log_k(n)) for n >= 1, k >= 2: digits needed to address n items. */
int ceilLog(std::int64_t n, int k);

} // namespace fbfly

#endif // FBFLY_COMMON_RADIX_H
