/**
 * @file
 * Fundamental scalar types shared across the fbfly library.
 *
 * Keeping these as named aliases (rather than bare ints) documents the
 * meaning of each quantity at interfaces and makes it cheap to widen a
 * type later.
 */

#ifndef FBFLY_COMMON_TYPES_H
#define FBFLY_COMMON_TYPES_H

#include <cstdint>

namespace fbfly
{

/** Simulation time, in router clock cycles. */
using Cycle = std::uint64_t;

/** Identifies a terminal (processing node) in the network. */
using NodeId = std::int32_t;

/** Identifies a router. */
using RouterId = std::int32_t;

/** Identifies a port on a router (terminal or inter-router). */
using PortId = std::int32_t;

/** Identifies a virtual channel within a port. */
using VcId = std::int32_t;

/** Identifies a packet; unique over a simulation run. */
using PacketId = std::uint64_t;

/** Identifies a flit; unique over a simulation run. */
using FlitId = std::uint64_t;

/** Sentinel for "no node / router / port / VC". */
constexpr std::int32_t kInvalid = -1;

} // namespace fbfly

#endif // FBFLY_COMMON_TYPES_H
