#include "common/rng.h"

#include "common/log.h"

namespace fbfly
{

namespace
{

/** SplitMix64 step used for seeding and stream derivation. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    FBFLY_ASSERT(bound > 0, "nextBounded requires a positive bound");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    FBFLY_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 random bits mapped onto [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBernoulli(double p)
{
    return nextDouble() < p;
}

Rng
Rng::split(std::uint64_t tag)
{
    std::uint64_t sm = s_[0] ^ (tag * 0x9e3779b97f4a7c15ULL);
    return Rng(splitMix64(sm));
}

} // namespace fbfly
