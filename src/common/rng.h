/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * We implement xoshiro256** (Blackman & Vigna) seeded through
 * SplitMix64 rather than relying on std::mt19937 so that simulation
 * results are bit-reproducible across standard-library
 * implementations.  Every stochastic component of the simulator
 * (traffic generators, routing tie-breaks, Valiant intermediate
 * selection) owns its own Rng stream derived from a master seed, so
 * experiments are reproducible and independent of iteration order.
 */

#ifndef FBFLY_COMMON_RNG_H
#define FBFLY_COMMON_RNG_H

#include <cstdint>

namespace fbfly
{

/**
 * A small, fast, deterministic PRNG (xoshiro256**).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /**
     * Uniform integer in [0, bound).
     *
     * @param bound exclusive upper bound; must be > 0.
     * @return uniformly distributed integer.
     */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with success probability p. */
    bool nextBernoulli(double p);

    /**
     * Derive an independent child stream.
     *
     * Mixes the given tag into a fresh seed so components created in
     * any order receive stable, decorrelated streams.
     */
    Rng split(std::uint64_t tag);

  private:
    std::uint64_t s_[4];
};

} // namespace fbfly

#endif // FBFLY_COMMON_RNG_H
