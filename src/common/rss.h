/**
 * @file
 * Peak resident-set-size probe for the memory-lean scale work
 * (bench/xscale_sweep, tests/test_shard_determinism.cc).
 *
 * Deliberately NOT part of MetricsRegistry: RSS is process-global
 * wall-clock state, and registries must stay bit-identical across
 * thread/shard counts (the obs determinism contract).
 */

#ifndef FBFLY_COMMON_RSS_H
#define FBFLY_COMMON_RSS_H

#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fbfly
{

/** Peak resident set size of this process in bytes, or 0 when the
 *  platform offers no getrusage().  Linux reports ru_maxrss in KiB,
 *  macOS in bytes. */
inline std::uint64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru {};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
#else
    return 0;
#endif
}

} // namespace fbfly

#endif // FBFLY_COMMON_RSS_H
