#include "common/radix.h"

#include "common/log.h"

namespace fbfly
{

int
digit(std::int64_t value, int d, int k)
{
    FBFLY_ASSERT(value >= 0 && d >= 0 && k >= 2, "bad digit query");
    for (int i = 0; i < d; ++i)
        value /= k;
    return static_cast<int>(value % k);
}

std::int64_t
setDigit(std::int64_t value, int d, int k, int v)
{
    FBFLY_ASSERT(v >= 0 && v < k, "digit value out of range");
    const std::int64_t scale = ipow(k, d);
    const int old = digit(value, d, k);
    return value + static_cast<std::int64_t>(v - old) * scale;
}

std::vector<int>
toDigits(std::int64_t value, int n, int k)
{
    std::vector<int> out(n);
    for (int i = 0; i < n; ++i) {
        out[i] = static_cast<int>(value % k);
        value /= k;
    }
    FBFLY_ASSERT(value == 0, "value does not fit in ", n, " digits");
    return out;
}

std::int64_t
fromDigits(const std::vector<int> &digits, int k)
{
    std::int64_t value = 0;
    for (int i = static_cast<int>(digits.size()) - 1; i >= 0; --i) {
        FBFLY_ASSERT(digits[i] >= 0 && digits[i] < k,
                     "digit out of range");
        value = value * k + digits[i];
    }
    return value;
}

int
countDiffDigits(std::int64_t a, std::int64_t b, int n, int k, int lo)
{
    int count = 0;
    for (int d = lo; d < n; ++d) {
        if (digit(a, d, k) != digit(b, d, k))
            ++count;
    }
    return count;
}

std::int64_t
ipow(std::int64_t k, int n)
{
    FBFLY_ASSERT(n >= 0, "negative exponent");
    std::int64_t result = 1;
    for (int i = 0; i < n; ++i) {
        FBFLY_ASSERT(result <= INT64_MAX / k, "ipow overflow");
        result *= k;
    }
    return result;
}

int
ceilLog(std::int64_t n, int k)
{
    FBFLY_ASSERT(n >= 1 && k >= 2, "bad ceilLog arguments");
    int digits = 0;
    std::int64_t reach = 1;
    while (reach < n) {
        reach *= k;
        ++digits;
    }
    return digits;
}

} // namespace fbfly
