/**
 * @file
 * Minimal logging and error-termination helpers in the gem5 style.
 *
 * fatal()  — the condition is the user's fault (bad configuration,
 *            impossible parameters); exits with status 1.
 * panic()  — the condition is a library bug (broken invariant);
 *            aborts so a debugger / core dump can capture state.
 * warn()   — something questionable happened but simulation continues.
 * inform() — status messages.
 */

#ifndef FBFLY_COMMON_LOG_H
#define FBFLY_COMMON_LOG_H

#include <sstream>
#include <string>

namespace fbfly
{

namespace detail
{

/** Terminate with exit(1) after printing a "fatal:" message. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with abort() after printing a "panic:" message. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print a "warn:" message to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Build a message from stream-insertable arguments. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace fbfly

#define FBFLY_FATAL(...) \
    ::fbfly::detail::fatalImpl(__FILE__, __LINE__, \
                               ::fbfly::detail::format(__VA_ARGS__))

#define FBFLY_PANIC(...) \
    ::fbfly::detail::panicImpl(__FILE__, __LINE__, \
                               ::fbfly::detail::format(__VA_ARGS__))

#define FBFLY_WARN(...) \
    ::fbfly::detail::warnImpl(__FILE__, __LINE__, \
                              ::fbfly::detail::format(__VA_ARGS__))

#define FBFLY_INFORM(...) \
    ::fbfly::detail::informImpl(::fbfly::detail::format(__VA_ARGS__))

/** Invariant check that survives in release builds. */
#define FBFLY_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            FBFLY_PANIC("assertion '", #cond, "' failed: ", \
                        ::fbfly::detail::format(__VA_ARGS__)); \
        } \
    } while (0)

#endif // FBFLY_COMMON_LOG_H
