/**
 * @file
 * RingQueue — a flat circular FIFO replacing std::deque on the
 * simulator's hot paths (channel wires, ack lanes, replay windows,
 * VC buffers).
 *
 * std::deque allocates and frees fixed-size blocks as elements churn
 * through it; on paths that push and pop a handful of flits per
 * cycle that is a steady stream of allocator traffic and pointer
 * chasing.  A RingQueue keeps one contiguous power-of-two array and
 * wraps indices, so steady-state push/pop touches no allocator and
 * the common front()/operator[] reads are a base + mask.
 *
 * Capacity grows geometrically (relinearizing the ring) when a push
 * exceeds it, so it is still safe for unbounded queues; shrink never
 * happens automatically.
 */

#ifndef FBFLY_COMMON_RING_QUEUE_H
#define FBFLY_COMMON_RING_QUEUE_H

#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/log.h"

namespace fbfly
{

/**
 * Contiguous circular FIFO with indexed access.
 */
template <typename T>
class RingQueue
{
  public:
    RingQueue() = default;

    /** @param initial_capacity first allocation size (rounded up to
     *         a power of two; 0 defers allocation to the first
     *         push). */
    explicit RingQueue(std::size_t initial_capacity)
    {
        if (initial_capacity > 0)
            buf_.resize(std::bit_ceil(initial_capacity));
    }

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return buf_.size(); }

    T &front()
    {
        FBFLY_ASSERT(count_ > 0, "front of empty RingQueue");
        return buf_[head_];
    }
    const T &front() const
    {
        FBFLY_ASSERT(count_ > 0, "front of empty RingQueue");
        return buf_[head_];
    }

    T &operator[](std::size_t i)
    {
        FBFLY_ASSERT(i < count_, "RingQueue index out of range");
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }
    const T &operator[](std::size_t i) const
    {
        FBFLY_ASSERT(i < count_, "RingQueue index out of range");
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

    void push_back(const T &v) { emplace_back(v); }
    void push_back(T &&v) { emplace_back(std::move(v)); }

    template <typename... Args>
    T &emplace_back(Args &&...args)
    {
        if (count_ == buf_.size())
            grow();
        T &slot = buf_[(head_ + count_) & (buf_.size() - 1)];
        slot = T(std::forward<Args>(args)...);
        ++count_;
        return slot;
    }

    void pop_front()
    {
        FBFLY_ASSERT(count_ > 0, "pop_front of empty RingQueue");
        head_ = (head_ + 1) & (buf_.size() - 1);
        --count_;
    }

    /** Remove the element at index @p i, shifting the shorter side
     *  (used by the bypass switch path, which may grant any buffered
     *  flit). */
    T erase_at(std::size_t i)
    {
        FBFLY_ASSERT(i < count_, "erase_at out of range");
        T out = std::move((*this)[i]);
        if (i < count_ - i - 1) {
            // Shift the front half up.
            for (std::size_t j = i; j > 0; --j)
                (*this)[j] = std::move((*this)[j - 1]);
            pop_front();
        } else {
            // Shift the back half down.
            for (std::size_t j = i; j + 1 < count_; ++j)
                (*this)[j] = std::move((*this)[j + 1]);
            --count_;
        }
        return out;
    }

    void clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    void grow()
    {
        const std::size_t cap =
            buf_.empty() ? std::size_t{8} : buf_.size() * 2;
        std::vector<T> bigger(cap);
        for (std::size_t i = 0; i < count_; ++i)
            bigger[i] = std::move((*this)[i]);
        buf_.swap(bigger);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace fbfly

#endif // FBFLY_COMMON_RING_QUEUE_H
